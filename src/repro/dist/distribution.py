"""Distribution value types for the complexity measures.

The paper's measures are scalars — worst cases over identifier assignments —
but the follow-up questions it raises ("what does an *ordinary* assignment
look like?") are about **distributions**: how the pair ``(max_radius,
sum_radius)`` is distributed when the identifier permutation ranges over all
``n!`` assignments, or over a random sample of them.

Two value types carry that information:

* :class:`DiscreteDistribution` — a weighted distribution over scalar
  support points (integer radii, or float averages), with exact integer
  weights, moments, quantiles and pooling;
* :class:`RoundDistribution` — the joint distribution of ``(max_radius,
  sum_radius)`` for one ``(graph, algorithm)`` instance, together with the
  per-node radius marginals, from which both scalar measure distributions
  are derived.

Both types serialise to and from plain JSON-friendly dictionaries
(:meth:`RoundDistribution.to_json` / :meth:`RoundDistribution.from_json`),
so distributions can travel through campaign rows, CLI artifacts and
external dashboards.  Weights are kept as exact integers — counts of
assignments (exact enumeration) or of samples (Monte-Carlo) — so the total
weight of an exact distribution is exactly ``n!``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Union

from repro.errors import AnalysisError

#: Support values are integer radii or float averages.
Support = Union[int, float]


@dataclass(frozen=True)
class DiscreteDistribution:
    """A finitely supported distribution with exact integer weights.

    ``weights`` maps each support value to the number of assignments (or
    samples) that attain it.  Probabilities are derived on demand, so no
    precision is lost while distributions are being accumulated or pooled.

    >>> d = DiscreteDistribution.from_weights({1: 2, 3: 6})
    >>> d.total_weight, d.support()
    (8, (1, 3))
    >>> d.mean()
    2.5
    >>> d.pmf()[3]
    0.75
    >>> d.quantile(0.25), d.quantile(0.5)
    (1, 3)
    """

    _weights: tuple[tuple[Support, int], ...]

    @classmethod
    def from_weights(cls, weights: Mapping[Support, int]) -> "DiscreteDistribution":
        """Build from a ``{support value: weight}`` mapping."""
        if not weights:
            raise AnalysisError("a discrete distribution needs at least one support point")
        items = tuple(sorted(weights.items()))
        for value, weight in items:
            if weight <= 0:
                raise AnalysisError(
                    f"distribution weights must be positive integers, got {weight!r} at {value!r}"
                )
        return cls(_weights=items)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def weights(self) -> dict[Support, int]:
        """The ``{support value: weight}`` mapping (sorted by value)."""
        return dict(self._weights)

    def support(self) -> tuple[Support, ...]:
        """The support values, sorted ascending."""
        return tuple(value for value, _ in self._weights)

    @property
    def total_weight(self) -> int:
        """Sum of all weights (``n!`` for an exact distribution)."""
        return sum(weight for _, weight in self._weights)

    def pmf(self) -> dict[Support, float]:
        """Support value -> probability mass."""
        total = self.total_weight
        return {value: weight / total for value, weight in self._weights}

    def min(self) -> Support:
        """Smallest support value."""
        return self._weights[0][0]

    def max(self) -> Support:
        """Largest support value."""
        return self._weights[-1][0]

    # ------------------------------------------------------------------
    # moments and quantiles
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Weighted mean."""
        total = self.total_weight
        return sum(value * weight for value, weight in self._weights) / total

    def variance(self) -> float:
        """Weighted (population) variance."""
        mean = self.mean()
        total = self.total_weight
        return sum(weight * (value - mean) ** 2 for value, weight in self._weights) / total

    def std(self) -> float:
        """Weighted (population) standard deviation."""
        return self.variance() ** 0.5

    def cdf(self, x: float) -> float:
        """Probability of a value ``<= x``."""
        total = self.total_weight
        return sum(weight for value, weight in self._weights if value <= x) / total

    def quantile(self, q: float) -> Support:
        """Smallest support value whose CDF reaches ``q`` (0 < q <= 1)."""
        if not 0.0 < q <= 1.0:
            raise AnalysisError(f"quantile level must be in (0, 1], got {q!r}")
        # Relative tolerance: q * total rounds in float for large exact
        # totals (n! weights), so an absolute epsilon would push exact CDF
        # boundaries onto the next support value.
        threshold = q * self.total_weight * (1.0 - 1e-12)
        running = 0
        for value, weight in self._weights:
            running += weight
            if running >= threshold:
                return value
        return self._weights[-1][0]

    # ------------------------------------------------------------------
    # combination and serialisation
    # ------------------------------------------------------------------
    def scaled(self, factor: int) -> "DiscreteDistribution":
        """Multiply every weight by a positive integer factor."""
        if factor <= 0:
            raise AnalysisError(f"scale factor must be a positive integer, got {factor!r}")
        return DiscreteDistribution(
            _weights=tuple((value, weight * factor) for value, weight in self._weights)
        )

    @classmethod
    def pooled(cls, parts: Sequence["DiscreteDistribution"]) -> "DiscreteDistribution":
        """The weight-sum (mixture by counts) of several distributions.

        Pooling is how campaign rows aggregate across graphs: each part
        contributes mass proportional to its own total weight.
        """
        if not parts:
            raise AnalysisError("pooling needs at least one distribution")
        merged: dict[Support, int] = {}
        for part in parts:
            for value, weight in part._weights:
                merged[value] = merged.get(value, 0) + weight
        return cls.from_weights(merged)

    def as_pairs(self) -> list[list[Support]]:
        """JSON-friendly ``[[value, weight], ...]`` form (sorted by value)."""
        return [[value, weight] for value, weight in self._weights]

    @classmethod
    def from_pairs(cls, pairs: Iterable[Sequence[Support]]) -> "DiscreteDistribution":
        """Rebuild from :meth:`as_pairs` output."""
        return cls.from_weights({value: int(weight) for value, weight in pairs})

    def summary(self) -> dict[str, float]:
        """The headline statistics (mean, std, min, median, q90, max)."""
        return {
            "mean": self.mean(),
            "std": self.std(),
            "min": float(self.min()),
            "median": float(self.quantile(0.5)),
            "q90": float(self.quantile(0.9)),
            "max": float(self.max()),
        }

    def __len__(self) -> int:
        return len(self._weights)


def ascii_pmf(
    distribution: DiscreteDistribution, width: int = 24, max_lines: int = 12
) -> str:
    """A small horizontal bar chart of a distribution's pmf.

    One line per support point (the densest ``max_lines`` are kept), each
    with a bar proportional to its probability — enough to eyeball
    concentration in a terminal or an experiment note.

    >>> print(ascii_pmf(DiscreteDistribution.from_weights({0: 1, 1: 3}), width=4))
    0  0.250 #
    1  0.750 ####
    """
    pmf = distribution.pmf()
    kept = sorted(
        sorted(pmf, key=pmf.__getitem__, reverse=True)[:max_lines]
    )
    peak = max(pmf[value] for value in kept)
    label_width = max(len(_format_support(value)) for value in kept)
    lines = []
    for value in kept:
        bar = "#" * max(1, round(width * pmf[value] / peak))
        lines.append(
            f"{_format_support(value).ljust(label_width)}  {pmf[value]:.3f} {bar}"
        )
    return "\n".join(lines)


def _format_support(value: Support) -> str:
    return f"{value:g}" if isinstance(value, float) else str(value)


@dataclass(frozen=True)
class RoundDistribution:
    """The joint distribution of ``(max_radius, sum_radius)`` plus marginals.

    For one ``(graph, algorithm)`` instance, ``joint`` maps each attained
    ``(max_radius, sum_radius)`` pair to the number of identifier
    assignments (exact) or samples (Monte-Carlo) attaining it, and
    ``node_marginals[v]`` maps each radius to the weight with which
    position ``v`` stops at that radius.  Every marginal carries the same
    total weight as the joint.

    >>> d = RoundDistribution.from_counts(
    ...     n=2, joint={(1, 2): 2}, node_marginals=[{1: 2}, {1: 2}]
    ... )
    >>> d.total_weight, d.mean_average(), d.mean_max()
    (2, 1.0, 1.0)
    >>> RoundDistribution.from_json(d.to_json()) == d
    True
    """

    n: int
    joint: tuple[tuple[tuple[int, int], int], ...]
    node_marginals: tuple[tuple[tuple[int, int], ...], ...] = field(default=())

    @classmethod
    def from_counts(
        cls,
        n: int,
        joint: Mapping[tuple[int, int], int],
        node_marginals: Sequence[Mapping[int, int]] = (),
    ) -> "RoundDistribution":
        """Build from count mappings, validating weights and coverage."""
        if n <= 0:
            raise AnalysisError(f"a round distribution needs n >= 1, got {n}")
        if not joint:
            raise AnalysisError("a round distribution needs at least one joint outcome")
        joint_items = tuple(sorted(joint.items()))
        total = 0
        for (max_radius, sum_radius), weight in joint_items:
            if weight <= 0:
                raise AnalysisError(f"joint weights must be positive, got {weight!r}")
            if not 0 <= max_radius <= sum_radius <= n * max_radius:
                raise AnalysisError(
                    f"inconsistent joint outcome (max={max_radius}, sum={sum_radius}) for n={n}"
                )
            total += weight
        marginals = tuple(
            tuple(sorted(marginal.items())) for marginal in node_marginals
        )
        if marginals:
            if len(marginals) != n:
                raise AnalysisError(
                    f"expected {n} node marginals, got {len(marginals)}"
                )
            for position, marginal in enumerate(marginals):
                if sum(weight for _, weight in marginal) != total:
                    raise AnalysisError(
                        f"node marginal {position} carries a different total weight "
                        f"than the joint distribution ({total})"
                    )
        return cls(n=n, joint=joint_items, node_marginals=marginals)

    # ------------------------------------------------------------------
    # derived scalar distributions
    # ------------------------------------------------------------------
    @property
    def total_weight(self) -> int:
        """Number of assignments (or samples) covered — ``n!`` when exact."""
        return sum(weight for _, weight in self.joint)

    def max_distribution(self) -> DiscreteDistribution:
        """Marginal distribution of the classic measure ``max_radius``."""
        weights: dict[Support, int] = {}
        for (max_radius, _), weight in self.joint:
            weights[max_radius] = weights.get(max_radius, 0) + weight
        return DiscreteDistribution.from_weights(weights)

    def sum_distribution(self) -> DiscreteDistribution:
        """Marginal distribution of the radius sum."""
        weights: dict[Support, int] = {}
        for (_, sum_radius), weight in self.joint:
            weights[sum_radius] = weights.get(sum_radius, 0) + weight
        return DiscreteDistribution.from_weights(weights)

    def average_distribution(self) -> DiscreteDistribution:
        """Marginal distribution of the paper's measure ``sum_radius / n``."""
        weights: dict[Support, int] = {}
        for (_, sum_radius), weight in self.joint:
            value = sum_radius / self.n
            weights[value] = weights.get(value, 0) + weight
        return DiscreteDistribution.from_weights(weights)

    def node_marginal(self, position: int) -> DiscreteDistribution:
        """Distribution of the stopping radius of one position."""
        if not self.node_marginals:
            raise AnalysisError("this round distribution carries no node marginals")
        if not 0 <= position < self.n:
            raise AnalysisError(f"position {position} out of range for n={self.n}")
        return DiscreteDistribution.from_weights(dict(self.node_marginals[position]))

    def mean_average(self) -> float:
        """Weighted mean of the average measure."""
        total = self.total_weight
        return sum(s * w for (_, s), w in self.joint) / (total * self.n)

    def mean_max(self) -> float:
        """Weighted mean of the classic measure."""
        total = self.total_weight
        return sum(m * w for (m, _), w in self.joint) / total

    # ------------------------------------------------------------------
    # combination and serialisation
    # ------------------------------------------------------------------
    def scaled(self, factor: int) -> "RoundDistribution":
        """Multiply every weight (joint and marginal) by an integer factor."""
        if factor <= 0:
            raise AnalysisError(f"scale factor must be a positive integer, got {factor!r}")
        return RoundDistribution(
            n=self.n,
            joint=tuple((pair, weight * factor) for pair, weight in self.joint),
            node_marginals=tuple(
                tuple((radius, weight * factor) for radius, weight in marginal)
                for marginal in self.node_marginals
            ),
        )

    @classmethod
    def pooled(cls, parts: Sequence["RoundDistribution"]) -> "RoundDistribution":
        """Weight-sum of several distributions over the *same* ``n``.

        Distributions of different sizes have incompatible joints and
        marginals; pool their scalar marginals
        (:meth:`average_distribution`, :meth:`max_distribution`) via
        :meth:`DiscreteDistribution.pooled` instead.
        """
        if not parts:
            raise AnalysisError("pooling needs at least one distribution")
        n = parts[0].n
        if any(part.n != n for part in parts):
            raise AnalysisError(
                "cannot pool round distributions over different n; pool the "
                "scalar measure marginals instead"
            )
        joint: dict[tuple[int, int], int] = {}
        for part in parts:
            for pair, weight in part.joint:
                joint[pair] = joint.get(pair, 0) + weight
        keep_marginals = all(part.node_marginals for part in parts)
        marginals: list[dict[int, int]] = []
        if keep_marginals:
            for position in range(n):
                merged: dict[int, int] = {}
                for part in parts:
                    for radius, weight in part.node_marginals[position]:
                        merged[radius] = merged.get(radius, 0) + weight
                marginals.append(merged)
        return cls.from_counts(n=n, joint=joint, node_marginals=marginals)

    def as_dict(self) -> dict:
        """JSON-friendly document (see ``docs/distributions.md`` for the schema)."""
        return {
            "kind": "round-distribution",
            "version": 1,
            "n": self.n,
            "total_weight": self.total_weight,
            "joint": [
                [max_radius, sum_radius, weight]
                for (max_radius, sum_radius), weight in self.joint
            ],
            "node_marginals": [
                [[radius, weight] for radius, weight in marginal]
                for marginal in self.node_marginals
            ],
        }

    @classmethod
    def from_dict(cls, document: Mapping) -> "RoundDistribution":
        """Rebuild from :meth:`as_dict` output (validates the ``kind`` tag)."""
        if document.get("kind") != "round-distribution":
            raise AnalysisError(
                f"not a round-distribution document: kind={document.get('kind')!r}"
            )
        joint = {
            (int(max_radius), int(sum_radius)): int(weight)
            for max_radius, sum_radius, weight in document["joint"]
        }
        marginals = [
            {int(radius): int(weight) for radius, weight in marginal}
            for marginal in document.get("node_marginals", [])
        ]
        return cls.from_counts(
            n=int(document["n"]), joint=joint, node_marginals=marginals
        )

    def to_json(self) -> str:
        """Serialise to a JSON string (:meth:`from_json` round-trips it)."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RoundDistribution":
        """Parse a distribution previously produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> dict[str, dict[str, float]]:
        """Headline statistics of both measure marginals."""
        return {
            "average": self.average_distribution().summary(),
            "max": self.max_distribution().summary(),
        }
