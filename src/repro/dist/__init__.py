"""Distributional measures: beyond worst-case scalars.

The paper compares two *scalar* measures — worst cases over the identifier
assignment — but its follow-up questions (and the follow-up papers tracked
in ``PAPERS.md``) ask about the whole **distribution** of running times
when the assignment varies.  This package is that distribution layer:

* :mod:`repro.dist.distribution` — the value types:
  :class:`~repro.dist.distribution.DiscreteDistribution` (weighted scalar
  distribution with exact integer weights, moments, quantiles, pooling) and
  :class:`~repro.dist.distribution.RoundDistribution` (the joint
  ``(max_radius, sum_radius)`` distribution with per-node marginals and a
  JSON round trip);
* :mod:`repro.dist.exact` — the exact joint distribution over all ``n!``
  assignments from only ``n!/|Aut|`` simulations: one representative per
  canonical assignment class (via the symmetry-pruned enumerator of
  :mod:`repro.search`), each weighted by the class multiplicity ``|Aut|``,
  with a :class:`~repro.dist.exact.DistributionCertificate` making the
  claim auditable;
* :mod:`repro.dist.sampling` — deterministic seeded streaming estimators
  (Welford moments, P² quantile sketches, standard errors and normal
  confidence intervals) for instances where ``n!/|Aut|`` is out of reach.

The campaign grid (``repro sweep``'s sibling ``repro dist``), experiment
E13 and the benchmarks build on this package; see ``docs/distributions.md``
for a worked exact-vs-sampled example and the JSON schemas.
"""

from repro.dist.distribution import DiscreteDistribution, RoundDistribution, ascii_pmf
from repro.dist.exact import (
    DistributionCertificate,
    ExactDistributionResult,
    brute_force_round_distribution,
    exact_round_distribution,
)
from repro.dist.sampling import (
    ExpectedMeasures,
    MeasureEstimate,
    P2Quantile,
    SampledDistributionResult,
    ScaleSampleResult,
    StreamingMoments,
    draw_sample_rows,
    estimate_expected_measures,
    fold_sampled_radii,
    fold_scale_stats,
    sample_round_distribution,
)

__all__ = [
    "DiscreteDistribution",
    "DistributionCertificate",
    "ExactDistributionResult",
    "ExpectedMeasures",
    "MeasureEstimate",
    "P2Quantile",
    "RoundDistribution",
    "SampledDistributionResult",
    "ScaleSampleResult",
    "StreamingMoments",
    "ascii_pmf",
    "brute_force_round_distribution",
    "draw_sample_rows",
    "estimate_expected_measures",
    "fold_sampled_radii",
    "fold_scale_stats",
    "exact_round_distribution",
    "sample_round_distribution",
]
