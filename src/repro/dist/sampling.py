"""Seeded streaming estimators for the measure distributions.

Where :mod:`repro.dist.exact` enumerates, this module *samples*: identifier
assignments are drawn uniformly at random under an explicit seed contract
(same seed, same estimates — bit for bit, at any call site), and every
statistic is maintained in a single streaming pass:

* :class:`StreamingMoments` — Welford's online mean/variance, with standard
  errors and normal confidence intervals;
* :class:`P2Quantile` — the P² algorithm (Jain & Chlamtac 1985), a
  five-marker quantile sketch that never stores the sample;
* :func:`sample_round_distribution` — a Monte-Carlo
  :class:`~repro.dist.distribution.RoundDistribution` (joint counts and
  per-node marginals over the sample) together with
  :class:`MeasureEstimate` uncertainty summaries for both measures;
* :func:`estimate_expected_measures` — the estimator behind
  :func:`repro.core.measures.expected_measures_over_random_ids`, returning
  an :class:`ExpectedMeasures` that still unpacks like the legacy 2-tuple.

All sampling streams through the batch kernel: one
:class:`~repro.kernel.compile.CompiledInstance` per call (or an injected,
session-cached one), with the drawn assignments evaluated in chunks of
:data:`~repro.kernel.compile.DEFAULT_BATCH_ROWS` rows per
:func:`~repro.kernel.compile.simulate_batch` call.  Vectorised algorithms
run at array speed; everything else falls back to the kernel's engine
session (frontier plans plus a shared decision cache), so repeated ball
patterns between permutations are still simulated once.  Either way the
radii — and therefore every estimate — are bit-identical to the
per-assignment :class:`~repro.engine.frontier.FrontierRunner` path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.algorithm import BallAlgorithm
from repro.dist.distribution import RoundDistribution
from repro.errors import AnalysisError
from repro.kernel.compile import (
    DEFAULT_BATCH_ROWS,
    NUMPY_MAX_IDENTIFIER,
    CompiledInstance,
    compile_instance,
)
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.obs.spans import span as _obs_span
from repro.utils.rng import SeedLike, make_rng

#: z-score of the two-sided 95% normal confidence interval.
Z_95 = 1.959963984540054


class StreamingMoments:
    """Welford's online algorithm for mean and variance.

    Numerically stable, one pass, O(1) memory; the building block of every
    sampled estimate in this package.

    >>> moments = StreamingMoments()
    >>> for x in [1.0, 2.0, 3.0, 4.0]:
    ...     moments.update(x)
    >>> moments.count, moments.mean, moments.variance
    (4, 2.5, 1.6666666666666667)
    """

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def state_dict(self) -> dict:
        """The complete internal state, JSON-safe and lossless.

        Floats survive a JSON round trip bit-for-bit (Python serialises the
        shortest round-tripping representation), so an estimator restored
        with :meth:`from_state` continues *exactly* where this one stopped —
        the foundation of the service's resumable sampling queries.
        """
        return {"count": self.count, "mean": self.mean, "m2": self._m2}

    @classmethod
    def from_state(cls, state: Mapping) -> "StreamingMoments":
        """Rebuild an estimator from :meth:`state_dict` output."""
        moments = cls()
        moments.count = int(state["count"])
        moments.mean = float(state["mean"])
        moments._m2 = float(state["m2"])
        return moments

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return self.variance**0.5

    @property
    def std_error(self) -> float:
        """Standard error of the mean (``std / sqrt(count)``)."""
        if self.count == 0:
            return 0.0
        return self.std / math.sqrt(self.count)

    def ci95(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval for the mean."""
        half = Z_95 * self.std_error
        return (self.mean - half, self.mean + half)


class P2Quantile:
    """The P² streaming quantile sketch (Jain & Chlamtac 1985).

    Five markers track the running quantile without storing observations;
    until five samples arrive the exact small-sample quantile is returned.

    >>> sketch = P2Quantile(0.5)
    >>> for x in range(1, 101):
    ...     sketch.update(float(x))
    >>> 45.0 <= sketch.value <= 55.0
    True
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise AnalysisError(f"quantile level must be in (0, 1), got {p!r}")
        self.p = p
        self.count = 0
        self._initial: list[float] = []
        self._q: list[float] = []
        self._n: list[float] = []
        self._desired: list[float] = []
        self._increments = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def update(self, value: float) -> None:
        """Fold one observation into the sketch."""
        self.count += 1
        if self.count <= 5:
            self._initial.append(value)
            self._initial.sort()
            if self.count == 5:
                p = self.p
                self._q = list(self._initial)
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            return
        q, n = self._q, self._n
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = next(i for i in range(4) if q[i] <= value < q[i + 1])
        for i in range(cell + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers towards their desired positions.
        for i in range(1, 4):
            drift = self._desired[i] - n[i]
            if (drift >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                drift <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        q, n = self._q, self._n
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        q, n = self._q, self._n
        j = i + int(step)
        return q[i] + step * (q[j] - q[i]) / (n[j] - n[i])

    @property
    def value(self) -> float:
        """The current quantile estimate."""
        if self.count == 0:
            raise AnalysisError("the quantile sketch has seen no observations")
        if self.count <= 5:
            index = min(len(self._initial) - 1, int(self.p * len(self._initial)))
            return self._initial[index]
        return self._q[2]

    def state_dict(self) -> dict:
        """The complete marker state, JSON-safe and lossless (cf.
        :meth:`StreamingMoments.state_dict`)."""
        return {
            "p": self.p,
            "count": self.count,
            "initial": list(self._initial),
            "q": list(self._q),
            "n": list(self._n),
            "desired": list(self._desired),
        }

    @classmethod
    def from_state(cls, state: Mapping) -> "P2Quantile":
        """Rebuild a sketch from :meth:`state_dict` output."""
        sketch = cls(float(state["p"]))
        sketch.count = int(state["count"])
        sketch._initial = [float(x) for x in state["initial"]]
        sketch._q = [float(x) for x in state["q"]]
        sketch._n = [float(x) for x in state["n"]]
        sketch._desired = [float(x) for x in state["desired"]]
        return sketch


@dataclass(frozen=True)
class MeasureEstimate:
    """A sampled estimate of one measure, with its uncertainty.

    ``mean`` carries a standard error and a normal 95% interval; ``median``
    and ``q90`` come from P² sketches maintained in the same pass.
    """

    count: int
    mean: float
    std: float
    std_error: float
    ci95_low: float
    ci95_high: float
    median: float
    q90: float

    @classmethod
    def from_stream(
        cls, moments: StreamingMoments, median: P2Quantile, q90: P2Quantile
    ) -> "MeasureEstimate":
        """Freeze the streaming state into an immutable estimate."""
        low, high = moments.ci95()
        return cls(
            count=moments.count,
            mean=moments.mean,
            std=moments.std,
            std_error=moments.std_error,
            ci95_low=low,
            ci95_high=high,
            median=median.value,
            q90=q90.value,
        )

    def as_dict(self) -> dict:
        """JSON-friendly form (campaign rows, CLI artifacts)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "std_error": self.std_error,
            "ci95_low": self.ci95_low,
            "ci95_high": self.ci95_high,
            "median": self.median,
            "q90": self.q90,
        }


class ExpectedMeasures(tuple):
    """Expected measures with uncertainty, unpackable like the legacy 2-tuple.

    Historically :func:`repro.core.measures.expected_measures_over_random_ids`
    returned a bare ``(expected_average, expected_max)`` pair.  This class
    is the deprecation shim: it *is* that 2-tuple (so existing unpacking
    call sites keep working unchanged) while carrying the full
    :class:`MeasureEstimate` of each measure on ``.average`` / ``.maximum``.

    >>> import types
    >>> avg = types.SimpleNamespace(mean=1.5)
    >>> mx = types.SimpleNamespace(mean=3.0)
    >>> pair = ExpectedMeasures(avg, mx)
    >>> tuple(pair)
    (1.5, 3.0)
    >>> pair.average.mean
    1.5
    """

    def __new__(cls, average, maximum) -> "ExpectedMeasures":
        """Build from the two per-measure estimates (average first)."""
        self = super().__new__(cls, (average.mean, maximum.mean))
        self.average = average
        self.maximum = maximum
        return self

    def __getnewargs__(self) -> tuple:
        """Reconstruction args for pickle/copy (``__new__`` takes the estimates)."""
        return (self.average, self.maximum)


@dataclass(frozen=True)
class SampledDistributionResult:
    """Monte-Carlo distribution plus streaming uncertainty summaries.

    ``distribution`` holds the raw sample counts (total weight = number of
    samples); ``average`` and ``maximum`` are the streaming estimates of the
    two measures, including standard errors — the honest companion to any
    sampled point value.
    """

    distribution: RoundDistribution
    average: MeasureEstimate
    maximum: MeasureEstimate
    samples: int
    seed: Optional[int]

    def as_dict(self) -> dict:
        """JSON-friendly form (campaign rows, CLI artifacts)."""
        return {
            "distribution": self.distribution.as_dict(),
            "average": self.average.as_dict(),
            "maximum": self.maximum.as_dict(),
            "samples": self.samples,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class ScaleSampleResult:
    """Sampling-only measure estimates from the sharded scale path.

    The million-node counterpart of :class:`SampledDistributionResult`:
    the scale executor never materialises per-node radius vectors (a joint
    distribution at n = 10^6 would defeat the memory bound), only exact
    per-row ``(sum, max)`` partials — so this result carries the two
    measure estimates and nothing else.
    """

    average: MeasureEstimate
    maximum: MeasureEstimate
    samples: int
    seed: Optional[int]

    def as_dict(self) -> dict:
        """JSON-friendly form (result rows, CLI artifacts)."""
        return {
            "average": self.average.as_dict(),
            "maximum": self.maximum.as_dict(),
            "samples": self.samples,
            "seed": self.seed,
        }


def fold_scale_stats(row_stats: Sequence, seed: SeedLike = None) -> ScaleSampleResult:
    """Fold sharded per-row measure partials into streaming estimates.

    ``row_stats`` is the row-ordered output of
    :meth:`repro.kernel.shard.ShardedKernelExecutor.sample_measures` — one
    exact ``(sum, max)`` pair per sampled assignment, already merged across
    centre shards.  Folding happens here, in row order, with the same
    estimator stack as :func:`fold_sampled_radii` (Welford moments, P²
    sketches), so the estimates are deterministic at any worker count.
    """
    avg_moments, max_moments = StreamingMoments(), StreamingMoments()
    avg_median, avg_q90 = P2Quantile(0.5), P2Quantile(0.9)
    max_median, max_q90 = P2Quantile(0.5), P2Quantile(0.9)
    count = 0
    for stats in row_stats:
        average = stats.average_radius
        maximum = float(stats.max_radius)
        avg_moments.update(average)
        avg_median.update(average)
        avg_q90.update(average)
        max_moments.update(maximum)
        max_median.update(maximum)
        max_q90.update(maximum)
        count += 1
    if count == 0:
        raise AnalysisError("scale sampling needs at least one row of measures")
    return ScaleSampleResult(
        average=MeasureEstimate.from_stream(avg_moments, avg_median, avg_q90),
        maximum=MeasureEstimate.from_stream(max_moments, max_median, max_q90),
        samples=count,
        seed=seed if isinstance(seed, int) else None,
    )


def _draw_assignments(n: int, samples: int, seed: SeedLike):
    """Deterministic assignment stream: one master seed, one child per draw."""
    master = make_rng(seed)
    for _ in range(samples):
        yield random_assignment(n, seed=master.getrandbits(64))


def draw_sample_rows(n: int, samples: int, seed: SeedLike = None) -> list[tuple[int, ...]]:
    """The deterministic row stream behind :func:`sample_round_distribution`.

    Materialises the same ``samples`` seeded permutation draws the sampling
    estimator folds, as plain identifier tuples.  Callers that evaluate the
    rows elsewhere — the campaign layer batches many cells' draws through
    one :func:`repro.kernel.compile.simulate_many` submission — pair this
    with :func:`fold_sampled_radii` to reproduce
    :func:`sample_round_distribution` bit for bit.
    """
    if samples <= 0:
        raise AnalysisError(f"samples must be positive, got {samples}")
    return [
        assignment.identifiers()
        for assignment in _draw_assignments(n, samples, seed)
    ]


class _DistributionFold:
    """Streaming accumulator shared by the sampling entry points.

    Folds per-row radius vectors in draw order into the joint/marginal
    counts and the streaming moment/quantile estimators, so every caller —
    the chunked single-instance stream and the batched multi-cell path —
    produces the same :class:`SampledDistributionResult` for the same rows.
    """

    def __init__(self, n: int) -> None:
        self.n = n
        self.joint: dict[tuple[int, int], int] = {}
        self.marginals: list[dict[int, int]] = [{} for _ in range(n)]
        self.avg_moments, self.max_moments = StreamingMoments(), StreamingMoments()
        self.avg_median, self.avg_q90 = P2Quantile(0.5), P2Quantile(0.9)
        self.max_median, self.max_q90 = P2Quantile(0.5), P2Quantile(0.9)
        self.count = 0

    def fold(self, radii: Sequence[int]) -> None:
        max_radius = max(radii)
        sum_radius = sum(radii)
        key = (max_radius, sum_radius)
        self.joint[key] = self.joint.get(key, 0) + 1
        for position, radius in enumerate(radii):
            counts = self.marginals[position]
            counts[radius] = counts.get(radius, 0) + 1
        average_radius = sum_radius / self.n
        self.avg_moments.update(average_radius)
        self.max_moments.update(float(max_radius))
        self.avg_median.update(average_radius)
        self.avg_q90.update(average_radius)
        self.max_median.update(float(max_radius))
        self.max_q90.update(float(max_radius))
        self.count += 1

    def state_dict(self) -> dict:
        """The complete fold state — counts plus live estimator internals.

        Everything :class:`SampledDistributionResult` is computed from, in a
        lossless JSON-safe form (joint keys become ``[max, sum, count]``
        triples), so a fold restored with :meth:`load_state` and fed the
        draws ``count+1..m`` produces bit-for-bit the result of a fresh fold
        over draws ``1..m``.
        """
        return {
            "n": self.n,
            "count": self.count,
            "joint": [
                [key[0], key[1], weight] for key, weight in sorted(self.joint.items())
            ],
            "marginals": [sorted(counts.items()) for counts in self.marginals],
            "avg_moments": self.avg_moments.state_dict(),
            "max_moments": self.max_moments.state_dict(),
            "avg_median": self.avg_median.state_dict(),
            "avg_q90": self.avg_q90.state_dict(),
            "max_median": self.max_median.state_dict(),
            "max_q90": self.max_q90.state_dict(),
        }

    def load_state(self, state: Mapping) -> None:
        """Restore a fold previously exported with :meth:`state_dict`."""
        if int(state["n"]) != self.n:
            raise AnalysisError(
                f"estimator state is for n={state['n']}, cannot resume at n={self.n}"
            )
        self.count = int(state["count"])
        self.joint = {
            (int(maximum), int(total)): int(weight)
            for maximum, total, weight in state["joint"]
        }
        self.marginals = [
            {int(radius): int(weight) for radius, weight in counts}
            for counts in state["marginals"]
        ]
        if len(self.marginals) != self.n:
            raise AnalysisError(
                f"estimator state carries {len(self.marginals)} marginals "
                f"for n={self.n}"
            )
        self.avg_moments = StreamingMoments.from_state(state["avg_moments"])
        self.max_moments = StreamingMoments.from_state(state["max_moments"])
        self.avg_median = P2Quantile.from_state(state["avg_median"])
        self.avg_q90 = P2Quantile.from_state(state["avg_q90"])
        self.max_median = P2Quantile.from_state(state["max_median"])
        self.max_q90 = P2Quantile.from_state(state["max_q90"])

    def result(self, seed_record: Optional[int]) -> SampledDistributionResult:
        distribution = RoundDistribution.from_counts(
            n=self.n, joint=self.joint, node_marginals=self.marginals
        )
        return SampledDistributionResult(
            distribution=distribution,
            average=MeasureEstimate.from_stream(
                self.avg_moments, self.avg_median, self.avg_q90
            ),
            maximum=MeasureEstimate.from_stream(
                self.max_moments, self.max_median, self.max_q90
            ),
            samples=self.count,
            seed=seed_record,
        )


def fold_sampled_radii(
    n: int, radii_rows: Sequence[Sequence[int]], seed: SeedLike = None
) -> SampledDistributionResult:
    """Build a :class:`SampledDistributionResult` from precomputed radii rows.

    The second half of the split sampling pipeline: rows drawn with
    :func:`draw_sample_rows` and evaluated through the kernel (possibly
    merged with other cells' rows in one multi-instance batch) fold here
    exactly as :func:`sample_round_distribution` would have folded them.
    """
    fold = _DistributionFold(n)
    for radii in radii_rows:
        fold.fold(radii)
    if fold.count == 0:
        raise AnalysisError("sampling needs at least one radii row")
    return fold.result(seed if isinstance(seed, int) else None)


def sample_round_distribution(
    graph: Graph,
    algorithm: BallAlgorithm,
    samples: int = 256,
    seed: SeedLike = None,
    assignments: Optional[Sequence[IdentifierAssignment]] = None,
    kernel: Optional[CompiledInstance] = None,
) -> SampledDistributionResult:
    """Estimate the measure distribution from random identifier assignments.

    With ``assignments=None`` (the normal path), ``samples`` permutations
    are drawn under the explicit ``seed`` — the same seed always yields the
    same estimates.  An explicit assignment sequence overrides the drawing
    (used by the legacy Monte-Carlo call sites).  ``kernel`` optionally
    injects a pre-compiled batch instance for ``(graph, algorithm)`` — the
    session layer passes its cached one — and is compiled on the spot when
    omitted; the sampled stream is evaluated through it in chunks.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> result = sample_round_distribution(
    ...     cycle_graph(8), LargestIdAlgorithm(), samples=32, seed=7
    ... )
    >>> result.distribution.total_weight
    32
    >>> result.maximum.mean  # the max node always sees half the cycle
    4.0
    >>> result == sample_round_distribution(
    ...     cycle_graph(8), LargestIdAlgorithm(), samples=32, seed=7
    ... )
    True
    """
    if assignments is None:
        if samples <= 0:
            raise AnalysisError(f"samples must be positive, got {samples}")
        stream = _draw_assignments(graph.n, samples, seed)
        seed_record = seed if isinstance(seed, int) else None
    else:
        if not assignments:
            raise AnalysisError("sampling needs at least one assignment")
        stream = iter(assignments)
        seed_record = None
    if kernel is None:
        kernel = compile_instance(graph, algorithm)
    if assignments is not None and kernel.backend == "numpy":
        # Explicit assignments may carry identifiers beyond the numpy
        # backend's int64 range (legal everywhere else); degrade to the
        # stdlib backend for this pass rather than rejecting them — the
        # radii, and therefore the estimates, are identical either way.
        largest = max(
            (
                max(ids.identifiers() if hasattr(ids, "identifiers") else ids)
                for ids in assignments
            ),
            default=0,
        )
        if largest > NUMPY_MAX_IDENTIFIER:
            kernel = compile_instance(graph, algorithm, backend="python")
    n = graph.n
    fold = _DistributionFold(n)
    # Stream the draws through the kernel in chunks: the whole chunk is one
    # simulate_batch call (array speed for vectorised rules), then the
    # streaming statistics fold each row in draw order — so the estimates
    # are bit-identical to the historical one-assignment-at-a-time loop.
    # Internally drawn rows are permutations of 0..n-1 by construction, so
    # the kernel's per-row re-validation is skipped for them; explicit
    # caller-supplied assignments keep full validation (they may cover the
    # wrong number of positions — the runner path used to reject that).
    trusted = assignments is None
    with _obs_span("dist.sampling", n=n, samples=samples if trusted else None):
        chunk: list[tuple[int, ...]] = []
        for ids in stream:
            chunk.append(
                ids.identifiers() if hasattr(ids, "identifiers") else tuple(ids)
            )
            if len(chunk) >= DEFAULT_BATCH_ROWS:
                for radii in kernel.batch_radii(chunk, pre_validated=trusted):
                    fold.fold(radii)
                chunk.clear()
        if chunk:
            for radii in kernel.batch_radii(chunk, pre_validated=trusted):
                fold.fold(radii)
    return fold.result(seed_record)


#: Document tag and schema version of the portable estimator state
#: (persisted by the service store next to sampled results; see
#: ``docs/service.md``).
ESTIMATOR_STATE_KIND = "repro-estimator-state"
ESTIMATOR_STATE_VERSION = 1


@dataclass(frozen=True)
class ResumableSample:
    """One resumable sampling outcome: the result plus portable estimator state.

    ``state`` is a versioned JSON-safe document
    (:data:`ESTIMATOR_STATE_KIND`) holding the draw count, the seed contract
    and the full fold internals (Welford moments, P² sketches, joint and
    marginal counts); feeding it back into
    :func:`sample_round_distribution_resumable` with a larger budget
    continues the estimate instead of restarting it.
    """

    result: SampledDistributionResult
    state: dict


def _validate_estimator_state(state: Mapping, n: int, seed_record: Optional[int]) -> dict:
    """Check a resume state's tag, version and seed/n contract."""
    if state.get("kind") != ESTIMATOR_STATE_KIND:
        raise AnalysisError(
            f"not an estimator state document: kind={state.get('kind')!r}"
        )
    if state.get("version") != ESTIMATOR_STATE_VERSION:
        raise AnalysisError(
            f"unsupported estimator state version {state.get('version')!r} "
            f"(this library reads version {ESTIMATOR_STATE_VERSION})"
        )
    if int(state["n"]) != n:
        raise AnalysisError(
            f"estimator state is for n={state['n']}, cannot resume at n={n}"
        )
    if state.get("seed") != seed_record:
        raise AnalysisError(
            f"estimator state was drawn under seed {state.get('seed')!r}, "
            f"cannot resume under seed {seed_record!r} (the draw streams differ)"
        )
    return dict(state)


def sample_round_distribution_resumable(
    graph: Graph,
    algorithm: BallAlgorithm,
    samples: int,
    seed: SeedLike = None,
    kernel: Optional[CompiledInstance] = None,
    state: Optional[Mapping] = None,
) -> ResumableSample:
    """Sample with exportable estimator state, resuming from ``state`` if given.

    The resumable sibling of :func:`sample_round_distribution`, with the
    identical seed contract: the returned estimate for a total budget of
    ``samples`` draws is **bit-for-bit** the estimate a single fresh run
    with ``samples`` draws would produce, whether the draws were folded in
    one pass or across any number of resumed continuations.  Draws already
    folded into ``state`` are skipped by replaying only the master RNG's
    child-seed stream (no simulation), so a continuation pays for its *new*
    draws only.

    ``samples`` is the **total** budget (old + new); resuming with a budget
    smaller than the stored draw count is an error — the fold cannot
    un-observe.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> graph, algorithm = cycle_graph(6), LargestIdAlgorithm()
    >>> first = sample_round_distribution_resumable(graph, algorithm, 8, seed=7)
    >>> resumed = sample_round_distribution_resumable(
    ...     graph, algorithm, 32, seed=7, state=first.state
    ... )
    >>> fresh = sample_round_distribution(graph, algorithm, samples=32, seed=7)
    >>> resumed.result == fresh
    True
    >>> resumed.state["draws"]
    32
    """
    if samples <= 0:
        raise AnalysisError(f"samples must be positive, got {samples}")
    seed_record = seed if isinstance(seed, int) else None
    n = graph.n
    fold = _DistributionFold(n)
    consumed = 0
    if state is not None:
        document = _validate_estimator_state(state, n, seed_record)
        consumed = int(document["draws"])
        if consumed > samples:
            raise AnalysisError(
                f"estimator state already folded {consumed} draws; the total "
                f"budget {samples} must not shrink"
            )
        fold.load_state(document["fold"])
        if fold.count != consumed:
            raise AnalysisError(
                f"estimator state is inconsistent: draws={consumed} but the "
                f"fold counted {fold.count}"
            )
    if kernel is None:
        kernel = compile_instance(graph, algorithm, validate=False)
    remaining = samples - consumed
    with _obs_span("dist.sampling.resumable", n=n, samples=samples, resumed=consumed):
        master = make_rng(seed)
        # Replay the child-seed stream of the already-folded draws so draw
        # k+1 of this continuation is exactly draw k+1 of a fresh run.
        for _ in range(consumed):
            master.getrandbits(64)
        chunk: list[tuple[int, ...]] = []
        for _ in range(remaining):
            chunk.append(random_assignment(n, seed=master.getrandbits(64)).identifiers())
            if len(chunk) >= DEFAULT_BATCH_ROWS:
                for radii in kernel.batch_radii(chunk, pre_validated=True):
                    fold.fold(radii)
                chunk.clear()
        if chunk:
            for radii in kernel.batch_radii(chunk, pre_validated=True):
                fold.fold(radii)
    if fold.count == 0:
        raise AnalysisError("sampling needs at least one radii row")
    new_state = {
        "kind": ESTIMATOR_STATE_KIND,
        "version": ESTIMATOR_STATE_VERSION,
        "n": n,
        "seed": seed_record,
        "draws": fold.count,
        "fold": fold.state_dict(),
    }
    return ResumableSample(result=fold.result(seed_record), state=new_state)


def estimate_expected_measures(
    graph: Graph,
    algorithm: BallAlgorithm,
    assignments: Optional[Sequence[IdentifierAssignment]] = None,
    samples: int = 64,
    seed: SeedLike = None,
) -> ExpectedMeasures:
    """Expected measures under random identifiers, with standard errors.

    The estimator behind
    :func:`repro.core.measures.expected_measures_over_random_ids`: either
    average over the supplied ``assignments`` (the legacy contract) or draw
    ``samples`` permutations under the explicit ``seed``.
    """
    result = sample_round_distribution(
        graph, algorithm, samples=samples, seed=seed, assignments=assignments
    )
    return ExpectedMeasures(result.average, result.maximum)
