"""Vectorised Cole–Vishkin rule for consistently oriented rings.

:class:`~repro.algorithms.cole_vishkin.ColeVishkinRing` commits every node at
exactly round ``R = iterations_until_six_colors(n) + 3``, so under the
ball simulation (:class:`~repro.algorithms.full_gather.BallSimulationOfRounds`)
the output radius is assignment-independent: ``min(R, saturation(v))`` (a
ball covering the whole graph replays the execution to completion early).
The outputs themselves come from replaying the global synchronous execution
on whole identifier matrices: ``cv_iterations`` batched bit-trick steps
(:func:`~repro.algorithms.color_reduction.cv_step` as array arithmetic —
lowest differing bit via two's-complement isolation and ``frexp``) followed
by the three palette-reduction rounds that retire colours 5, 4 and 3.

Identifier-range validation mirrors the round algorithm's ``initialize``:
the first out-of-range identifier, scanned in position order row by row,
raises the same :class:`~repro.errors.AlgorithmError` the engine path would
surface at radius 0.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.algorithms.color_reduction import cv_step, free_color
from repro.errors import AlgorithmError
from repro.kernel.rules import KernelRule
from repro.topology.cycle import PREDECESSOR_PORT, SUCCESSOR_PORT

if TYPE_CHECKING:  # pragma: no cover - imports for type checkers only
    from repro.algorithms.cole_vishkin import ColeVishkinRing
    from repro.kernel.compile import CompiledInstance

Rows = Sequence[tuple[int, ...]]

#: The final reduction retires these colours, one per round.
_REDUCE_TARGETS = (5, 4, 3)


class ColeVishkinRingRule(KernelRule):
    """Batched Cole–Vishkin 3-colouring over whole identifier matrices."""

    name = "cv-ring"
    vectorized = True

    def __init__(
        self, instance: "CompiledInstance", algorithm: "ColeVishkinRing"
    ) -> None:
        self._backend = instance.backend
        self._n = instance.n
        self._id_bound = algorithm.n
        self._iterations = algorithm.cv_iterations
        commit_round = self._iterations + len(_REDUCE_TARGETS)
        self._radii_row = tuple(
            min(commit_round, saturation) for saturation in instance.saturation
        )
        graph = instance.graph
        self._successor = tuple(
            graph.neighbors(v)[SUCCESSOR_PORT] for v in graph.positions()
        )
        self._predecessor = tuple(
            graph.neighbors(v)[PREDECESSOR_PORT] for v in graph.positions()
        )
        self._np_tables = None

    def _validate(self, rows: Rows) -> None:
        """Reject out-of-range identifiers exactly like ``initialize`` does.

        The engine path raises from the radius-0 sweep, i.e. for the first
        offending position of the first offending row; scanning rows in
        order reproduces that error for the same identifier.
        """
        bound = self._id_bound
        for row in rows:
            for identifier in row:
                if identifier >= bound:
                    raise AlgorithmError(
                        f"identifier {identifier} is outside 0..{bound - 1}; "
                        "ColeVishkinRing expects identifiers drawn from 0..n-1"
                    )

    # ------------------------------------------------------------------
    # stdlib path
    # ------------------------------------------------------------------
    def _row_outputs(self, ids) -> tuple[int, ...]:
        predecessor = self._predecessor
        successor = self._successor
        n = self._n
        colors = list(ids)
        for _ in range(self._iterations):
            colors = [cv_step(colors[v], colors[predecessor[v]]) for v in range(n)]
        for target in _REDUCE_TARGETS:
            colors = [
                free_color({colors[successor[v]], colors[predecessor[v]]})
                if colors[v] == target
                else colors[v]
                for v in range(n)
            ]
        return tuple(colors)

    # ------------------------------------------------------------------
    # numpy path
    # ------------------------------------------------------------------
    def _tables(self):
        if self._np_tables is None:
            from repro.kernel.backend import numpy_module

            np = numpy_module()
            self._np_tables = (
                np,
                np.asarray(self._successor, dtype=np.int64),
                np.asarray(self._predecessor, dtype=np.int64),
            )
        return self._np_tables

    def _batch_numpy_outputs(self, rows: Rows):
        np, successor, predecessor = self._tables()
        colors = np.asarray(rows, dtype=np.int64)
        for _ in range(self._iterations):
            other = colors[:, predecessor]
            differing = colors ^ other
            lowest = differing & -differing
            # frexp is exact on powers of two: exponent - 1 == bit index.
            _, exponent = np.frexp(lowest.astype(np.float64))
            index = exponent.astype(np.int64) - 1
            bit = (colors >> index) & 1
            colors = 2 * index + bit
        for target in _REDUCE_TARGETS:
            a = colors[:, successor]
            b = colors[:, predecessor]
            free = np.where(
                (a != 0) & (b != 0), 0, np.where((a != 1) & (b != 1), 1, 2)
            )
            colors = np.where(colors == target, free, colors)
        return colors

    # ------------------------------------------------------------------
    # KernelRule interface
    # ------------------------------------------------------------------
    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        self._validate(rows)
        return [self._radii_row] * len(rows)

    def batch_radii_outputs(self, rows: Rows):
        self._validate(rows)
        radii = [self._radii_row] * len(rows)
        if self._backend == "numpy":
            outputs = self._batch_numpy_outputs(rows)
            return radii, [tuple(row) for row in outputs.tolist()]
        return radii, [self._row_outputs(ids) for ids in rows]
