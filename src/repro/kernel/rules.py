"""Precompiled decision rules evaluated by the batch kernel.

A :class:`KernelRule` answers *whole matrices* of identifier assignments
for one compiled ``(graph, algorithm)`` pair: given rows of
position -> identifier tuples it returns, per row, the radius at which every
node outputs (and, on request, the outputs themselves).  Rules come in two
flavours:

* **vectorised** rules (``vectorized = True``) know a closed-form,
  array-friendly description of the algorithm's stopping radius and run it
  either as numpy expressions or as tight stdlib loops.
  :class:`MaxScanRule` — the rule of the paper's largest-ID algorithm — is
  the canonical example: a node's radius is the BFS distance to the nearest
  strictly larger identifier, or its saturation radius when it carries the
  global maximum.  Algorithms opt in through
  :meth:`repro.core.algorithm.BallAlgorithm.compile_kernel_rule`.

* the **decide-backed** fallback (:class:`RunnerTableRule`) for everything
  that cannot be table-compiled: rows run one at a time through the
  instance's private :class:`~repro.engine.frontier.FrontierRunner` session
  (frontier plans plus a warm :class:`~repro.engine.cache.DecisionCache`,
  i.e. per-``(centre, radius)`` decision tables keyed by identifier
  patterns), so the kernel interface stays uniform and the results stay
  bit-identical to the single-assignment reference path by construction.

Every rule must agree with :class:`~repro.engine.frontier.FrontierRunner`
bit for bit — ``tests/property/test_property_kernel.py`` enforces this for
every registered algorithm under both backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.model.identifiers import IdentifierAssignment

if TYPE_CHECKING:  # pragma: no cover - imports for type checkers only
    from repro.kernel.compile import CompiledInstance

Rows = Sequence[tuple[int, ...]]


class KernelRule:
    """One algorithm's batch evaluation strategy on a compiled instance."""

    #: Short rule identifier recorded in result rows and benchmark artifacts.
    name: str = "kernel-rule"

    #: Whether the rule evaluates whole matrices with array expressions.
    #: Non-vectorised rules fall back to per-row execution; batching them is
    #: an interface convenience, not a throughput win, and callers like the
    #: swap evaluator use this flag to decide whether batching pays.
    vectorized: bool = False

    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        """Per-row tuple of per-position output radii."""
        raise NotImplementedError

    def batch_radii_outputs(
        self, rows: Rows
    ) -> tuple[list[tuple[int, ...]], list[tuple[Any, ...]]]:
        """Per-row radii and outputs (the trace-parity surface)."""
        raise NotImplementedError


class RunnerTableRule(KernelRule):
    """Decide-backed fallback: one engine session, rows evaluated one by one.

    The session's :class:`~repro.engine.cache.DecisionCache` *is* the
    decision table — interned per-``(centre, radius)`` structural keys plus
    identifier patterns — so repeated ball contents across the rows of a
    batch (and across batches) are decided once.  Everything the cache
    cannot answer goes to the algorithm's own ``decide``, exactly like the
    single-assignment path.
    """

    name = "runner-table"
    vectorized = False

    def __init__(self, instance: "CompiledInstance") -> None:
        algorithm = instance.algorithm
        self._runner = FrontierRunner(
            instance.graph,
            algorithm,
            cache=DecisionCache(algorithm, max_entries=instance.max_table_entries),
            validate=False,
        )

    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        return [radii for radii, _ in map(self._run_row, rows)]

    def batch_radii_outputs(self, rows):
        results = [self._run_row(row) for row in rows]
        return [radii for radii, _ in results], [outputs for _, outputs in results]

    def _run_row(self, row: tuple[int, ...]) -> tuple[tuple[int, ...], tuple[Any, ...]]:
        trace = self._runner.run(IdentifierAssignment(row))
        radii = trace.radii()
        outputs = trace.outputs_by_position()
        positions = range(len(row))
        return (
            tuple(radii[position] for position in positions),
            tuple(outputs[position] for position in positions),
        )


class MaxScanRule(KernelRule):
    """Vectorised largest-ID rule: distance to the nearest larger identifier.

    The largest-ID algorithm outputs ``False`` at the first radius whose
    ball shows an identifier above the centre's own, and ``True`` once its
    ball covers the whole graph.  On a compiled instance both events are
    pure array lookups: each centre's ball members arrive in BFS discovery
    order, so the first discovery index carrying a larger identifier sits in
    the earliest layer that contains one — its layer number (the plan's
    ``distances`` entry) *is* the output radius — and a centre with no
    larger identifier anywhere outputs ``True`` at its saturation radius.
    """

    name = "max-scan"
    vectorized = True

    def __init__(self, instance: "CompiledInstance") -> None:
        self._backend = instance.backend
        self._n = instance.n
        self._discovery = instance.discovery
        self._distances = instance.distances
        self._saturation = instance.saturation
        self._np_tables = None

    # ------------------------------------------------------------------
    # stdlib path
    # ------------------------------------------------------------------
    def _row(self, ids: tuple[int, ...]) -> tuple[tuple[int, ...], tuple[bool, ...]]:
        radii = []
        outputs = []
        for v in range(self._n):
            own = ids[v]
            distances = self._distances[v]
            radius = self._saturation[v]
            larger = False
            for index, position in enumerate(self._discovery[v]):
                if ids[position] > own:
                    radius = distances[index]
                    larger = True
                    break
            radii.append(radius)
            outputs.append(not larger)
        return tuple(radii), tuple(outputs)

    # ------------------------------------------------------------------
    # numpy path
    # ------------------------------------------------------------------
    def _tables(self):
        """Per-centre gather tables as numpy arrays (built on first batch)."""
        if self._np_tables is None:
            from repro.kernel.backend import numpy_module

            np = numpy_module()
            self._np_tables = (
                np,
                [np.asarray(discovery, dtype=np.int64) for discovery in self._discovery],
                [np.asarray(distances, dtype=np.int64) for distances in self._distances],
            )
        return self._np_tables

    def _batch_numpy(self, rows: Rows):
        np, discovery, distances = self._tables()
        ids = np.asarray(rows, dtype=np.int64)
        batch = ids.shape[0]
        radii = np.empty((batch, self._n), dtype=np.int64)
        larger_seen = np.empty((batch, self._n), dtype=bool)
        for v in range(self._n):
            gathered = ids[:, discovery[v]]
            mask = gathered > ids[:, v, None]
            seen = mask.any(axis=1)
            first = mask.argmax(axis=1)
            radii[:, v] = np.where(seen, distances[v][first], self._saturation[v])
            larger_seen[:, v] = seen
        return radii, larger_seen

    # ------------------------------------------------------------------
    # KernelRule interface
    # ------------------------------------------------------------------
    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        if self._backend == "numpy":
            radii, _ = self._batch_numpy(rows)
            return [tuple(row) for row in radii.tolist()]
        return [self._row(ids)[0] for ids in rows]

    def batch_radii_outputs(self, rows):
        if self._backend == "numpy":
            radii, larger_seen = self._batch_numpy(rows)
            outputs = (~larger_seen).tolist()
            return (
                [tuple(row) for row in radii.tolist()],
                [tuple(row) for row in outputs],
            )
        results = [self._row(ids) for ids in rows]
        return [radii for radii, _ in results], [outputs for _, outputs in results]
