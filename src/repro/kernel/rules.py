"""Precompiled decision rules evaluated by the batch kernel.

A :class:`KernelRule` answers *whole matrices* of identifier assignments
for one compiled ``(graph, algorithm)`` pair: given rows of
position -> identifier tuples it returns, per row, the radius at which every
node outputs (and, on request, the outputs themselves).  Rules come in two
flavours:

* **vectorised** rules (``vectorized = True``) know a closed-form,
  array-friendly description of the algorithm's stopping radius and run it
  either as numpy expressions or as tight stdlib loops.
  :class:`MaxScanRule` — the rule of the paper's largest-ID algorithm — is
  the canonical example: a node's radius is the BFS distance to the nearest
  strictly larger identifier, or its saturation radius when it carries the
  global maximum.  Algorithms opt in through
  :meth:`repro.core.algorithm.BallAlgorithm.compile_kernel_rule`.

* the **decide-backed** fallback (:class:`RunnerTableRule`) for everything
  that cannot be table-compiled: rows run one at a time through the
  instance's private :class:`~repro.engine.frontier.FrontierRunner` session
  (frontier plans plus a warm :class:`~repro.engine.cache.DecisionCache`,
  i.e. per-``(centre, radius)`` decision tables keyed by identifier
  patterns), so the kernel interface stays uniform and the results stay
  bit-identical to the single-assignment reference path by construction.

Every rule must agree with :class:`~repro.engine.frontier.FrontierRunner`
bit for bit — ``tests/property/test_property_kernel.py`` enforces this for
every registered algorithm under both backends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.model.identifiers import IdentifierAssignment

if TYPE_CHECKING:  # pragma: no cover - imports for type checkers only
    from repro.kernel.compile import CompiledInstance

Rows = Sequence[tuple[int, ...]]


class KernelRule:
    """One algorithm's batch evaluation strategy on a compiled instance."""

    #: Short rule identifier recorded in result rows and benchmark artifacts.
    name: str = "kernel-rule"

    #: Whether the rule evaluates whole matrices with array expressions.
    #: Non-vectorised rules fall back to per-row execution; batching them is
    #: an interface convenience, not a throughput win, and callers like the
    #: swap evaluator use this flag to decide whether batching pays.
    vectorized: bool = False

    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        """Per-row tuple of per-position output radii."""
        raise NotImplementedError

    def batch_radii_outputs(
        self, rows: Rows
    ) -> tuple[list[tuple[int, ...]], list[tuple[Any, ...]]]:
        """Per-row radii and outputs (the trace-parity surface)."""
        raise NotImplementedError


class RunnerTableRule(KernelRule):
    """Decide-backed fallback: one engine session, rows evaluated one by one.

    The session's :class:`~repro.engine.cache.DecisionCache` *is* the
    decision table — interned per-``(centre, radius)`` structural keys plus
    identifier patterns — so repeated ball contents across the rows of a
    batch (and across batches) are decided once.  Everything the cache
    cannot answer goes to the algorithm's own ``decide``, exactly like the
    single-assignment path.
    """

    name = "runner-table"
    vectorized = False

    def __init__(self, instance: "CompiledInstance") -> None:
        algorithm = instance.algorithm
        self._runner = FrontierRunner(
            instance.graph,
            algorithm,
            cache=DecisionCache(algorithm, max_entries=instance.max_table_entries),
            validate=False,
        )

    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        return [radii for radii, _ in map(self._run_row, rows)]

    def batch_radii_outputs(self, rows):
        results = [self._run_row(row) for row in rows]
        return [radii for radii, _ in results], [outputs for _, outputs in results]

    def _run_row(self, row: tuple[int, ...]) -> tuple[tuple[int, ...], tuple[Any, ...]]:
        trace = self._runner.run(IdentifierAssignment(row))
        radii = trace.radii()
        outputs = trace.outputs_by_position()
        positions = range(len(row))
        return (
            tuple(radii[position] for position in positions),
            tuple(outputs[position] for position in positions),
        )


class MaxScanRule(KernelRule):
    """Vectorised largest-ID rule: distance to the nearest larger identifier.

    The largest-ID algorithm outputs ``False`` at the first radius whose
    ball shows an identifier above the centre's own, and ``True`` once its
    ball covers the whole graph.  On a compiled instance both events are
    pure array lookups: each centre's ball members arrive in BFS discovery
    order, so the first discovery index carrying a larger identifier sits in
    the earliest layer that contains one — its layer number (the plan's
    ``distances`` entry) *is* the output radius — and a centre with no
    larger identifier anywhere outputs ``True`` at its saturation radius.
    """

    name = "max-scan"
    vectorized = True
    #: The radius of a centre depends only on its own plan, so the rule can
    #: evaluate centre-major against transient plan chunks — the property
    #: ``plan_chunk`` mode of :class:`~repro.kernel.compile.CompiledInstance`
    #: requires of its rule.
    supports_plan_chunk = True

    def __init__(self, instance: "CompiledInstance") -> None:
        self._backend = instance.backend
        self._n = instance.n
        self._instance = instance
        self._chunked = getattr(instance, "plan_chunk", None) is not None
        # Eager instances expose their resident plan prefixes directly; a
        # chunked instance never has them all at once, so the rule walks
        # ``iter_plan_chunks`` per batch instead.
        self._discovery = None if self._chunked else instance.discovery
        self._distances = None if self._chunked else instance.distances
        self._saturation = instance.saturation
        self._np_tables = None
        self._np_padded = None
        self._np_group = None

    # ------------------------------------------------------------------
    # stdlib path
    # ------------------------------------------------------------------
    def _row(self, ids: tuple[int, ...]) -> tuple[tuple[int, ...], tuple[bool, ...]]:
        radii = []
        outputs = []
        for v in range(self._n):
            own = ids[v]
            distances = self._distances[v]
            radius = self._saturation[v]
            larger = False
            for index, position in enumerate(self._discovery[v]):
                if ids[position] > own:
                    radius = distances[index]
                    larger = True
                    break
            radii.append(radius)
            outputs.append(not larger)
        return tuple(radii), tuple(outputs)

    # ------------------------------------------------------------------
    # numpy path
    # ------------------------------------------------------------------
    def _tables(self):
        """Per-centre gather tables as numpy arrays (built on first batch)."""
        if self._np_tables is None:
            from repro.kernel.backend import numpy_module

            np = numpy_module()
            self._np_tables = (
                np,
                [np.asarray(discovery, dtype=np.int64) for discovery in self._discovery],
                [np.asarray(distances, dtype=np.int64) for distances in self._distances],
            )
        return self._np_tables

    def _batch_numpy(self, rows: Rows):
        np, discovery, distances = self._tables()
        ids = np.asarray(rows, dtype=np.int64)
        batch = ids.shape[0]
        radii = np.empty((batch, self._n), dtype=np.int64)
        larger_seen = np.empty((batch, self._n), dtype=bool)
        for v in range(self._n):
            gathered = ids[:, discovery[v]]
            mask = gathered > ids[:, v, None]
            seen = mask.any(axis=1)
            first = mask.argmax(axis=1)
            radii[:, v] = np.where(seen, distances[v][first], self._saturation[v])
            larger_seen[:, v] = seen
        return radii, larger_seen

    # ------------------------------------------------------------------
    # chunked-plan path (plan_chunk instances, both backends)
    # ------------------------------------------------------------------
    def _batch_chunked(self, rows: Rows):
        """Centre-major sweep over transient plan chunks.

        Same comparisons, same order, as the eager paths — only the plan
        lifetime differs — so the results are bit-identical to an eager
        instance on the same graph (the plan-chunk tests assert this).
        """
        count = len(rows)
        if self._backend == "numpy":
            from repro.kernel.backend import numpy_module

            np = numpy_module()
            ids = np.asarray(rows, dtype=np.int64)
            radii = np.empty((count, self._n), dtype=np.int64)
            larger_seen = np.empty((count, self._n), dtype=bool)
            for centers, plans in self._instance.iter_plan_chunks():
                for v, plan in zip(centers, plans):
                    discovery = np.asarray(plan.discovery, dtype=np.int64)
                    distances = np.asarray(plan.distances, dtype=np.int64)
                    gathered = ids[:, discovery]
                    mask = gathered > ids[:, v, None]
                    seen = mask.any(axis=1)
                    first = mask.argmax(axis=1)
                    radii[:, v] = np.where(seen, distances[first], self._saturation[v])
                    larger_seen[:, v] = seen
            return (
                [tuple(row) for row in radii.tolist()],
                [tuple(row) for row in larger_seen.tolist()],
            )
        radii_rows = [[0] * self._n for _ in range(count)]
        larger_rows = [[False] * self._n for _ in range(count)]
        for centers, plans in self._instance.iter_plan_chunks():
            for v, plan in zip(centers, plans):
                discovery = plan.discovery
                distances = plan.distances
                saturation = self._saturation[v]
                for r, ids in enumerate(rows):
                    own = ids[v]
                    radius = saturation
                    larger = False
                    for index, position in enumerate(discovery):
                        if ids[position] > own:
                            radius = distances[index]
                            larger = True
                            break
                    radii_rows[r][v] = radius
                    larger_rows[r][v] = larger
        return (
            [tuple(row) for row in radii_rows],
            [tuple(row) for row in larger_rows],
        )

    # ------------------------------------------------------------------
    # padded same-shape group path (numpy, eager instances)
    # ------------------------------------------------------------------
    def _padded_own_tables(self):
        """This rule's gather/layer tables as dense ``(n, width)`` matrices.

        Each centre's row is right-padded **with the centre's own position**
        (layer 0): a gathered identifier equal to the centre's own can never
        satisfy the strict ``>`` comparison, so padded columns are inert.
        Built once per rule and cached — the padded group path stacks these
        across instances on every chunk.
        """
        if self._np_padded is None:
            from repro.kernel.backend import numpy_module

            np = numpy_module()
            width = max(len(table) for table in self._discovery)
            gather = np.tile(
                np.arange(self._n, dtype=np.int64)[:, None], (1, width)
            )
            layers = np.zeros((self._n, width), dtype=np.int64)
            for v in range(self._n):
                table = self._discovery[v]
                gather[v, : len(table)] = table
                layers[v, : len(table)] = self._distances[v]
            self._np_padded = (gather, layers)
        return self._np_padded

    @staticmethod
    def _group_tables(rules: Sequence["MaxScanRule"]):
        """Stacked gather/layer tensors for one same-shape instance group.

        Stacks every rule's :meth:`_padded_own_tables` into ``(groups, n,
        width)`` tensors (padded again with each centre's own position, so
        the extra columns stay inert) plus the flat gather indices into the
        group's transposed id block.  Cached on ``rules[0]`` keyed by the
        exact rule tuple — the tuple holds strong references, so object
        identity is a sound cache key — because the same instance group
        recurs across sampling chunks and calls.
        """
        key = tuple(rules)
        cached = rules[0]._np_group
        if cached is not None and cached[0] == key:
            return cached[1]
        from repro.kernel.backend import numpy_module

        np = numpy_module()
        n = rules[0]._n
        groups = len(rules)
        tables = [rule._padded_own_tables() for rule in rules]
        width = max(gather.shape[1] for gather, _ in tables)
        stacked_gather = np.tile(
            np.arange(n, dtype=np.int64)[None, :, None], (groups, 1, width)
        )
        stacked_layers = np.zeros((groups, n, width), dtype=np.int64)
        for g, (gather, layers) in enumerate(tables):
            stacked_gather[g, :, : gather.shape[1]] = gather
            stacked_layers[g, :, : layers.shape[1]] = layers
        # Flat row indices into the (groups * n, rows) transposed id block:
        # row g*n + stacked_gather[g, v, k] holds the gathered position's
        # identifiers across the whole sample batch.
        flat_gather = (
            np.arange(groups, dtype=np.int64)[:, None, None] * n + stacked_gather
        ).reshape(-1)
        saturation = np.asarray(
            [rule._saturation for rule in rules], dtype=np.int64
        )
        built = (np, n, groups, width, flat_gather, stacked_layers, saturation)
        rules[0]._np_group = (key, built)
        return built

    @staticmethod
    def padded_batch_radii(
        rules: Sequence["MaxScanRule"], row_blocks: Sequence[Rows]
    ) -> list[list[tuple[int, ...]]]:
        """One stacked, padded array evaluation across same-shape instances.

        ``row_blocks[g]`` holds the rows of ``rules[g]``; every block must
        have the same ``(rows, n)`` shape (the caller,
        :func:`~repro.kernel.compile.simulate_many`, groups by shape).  The
        group's stacked tables answer every centre of every instance in one
        contiguous row gather — no per-centre python loop — and the padded
        columns can never satisfy the strict ``>`` comparison, so the result
        is bit-identical to evaluating each instance sequentially (the
        property wall proves it for every registered topology shape).
        """
        np, n, groups, width, flat_gather, stacked_layers, saturation = (
            MaxScanRule._group_tables(rules)
        )
        ids = np.asarray(row_blocks, dtype=np.int64)  # (groups, rows, n)
        rows = ids.shape[1]
        # Position-major layout: reductions run over the contiguous last
        # axis, and the gather copies whole per-position sample rows.
        ids_t = np.ascontiguousarray(ids.transpose(0, 2, 1))  # (groups, n, rows)
        gathered = ids_t.reshape(groups * n, rows)[flat_gather].reshape(
            groups, n, width, rows
        )
        mask = gathered > ids_t[:, :, None, :]
        seen = mask.any(axis=2)
        first = mask.argmax(axis=2)  # (groups, n, rows)
        layer_hit = np.take_along_axis(stacked_layers, first, axis=2)
        radii = np.where(seen, layer_hit, saturation[:, :, None]).transpose(0, 2, 1)
        return [[tuple(row) for row in block] for block in radii.tolist()]

    # ------------------------------------------------------------------
    # KernelRule interface
    # ------------------------------------------------------------------
    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        if self._chunked:
            return self._batch_chunked(rows)[0]
        if self._backend == "numpy":
            radii, _ = self._batch_numpy(rows)
            return [tuple(row) for row in radii.tolist()]
        return [self._row(ids)[0] for ids in rows]

    def batch_radii_outputs(self, rows):
        if self._chunked:
            radii, larger_rows = self._batch_chunked(rows)
            return radii, [tuple(not larger for larger in row) for row in larger_rows]
        if self._backend == "numpy":
            radii, larger_seen = self._batch_numpy(rows)
            outputs = (~larger_seen).tolist()
            return (
                [tuple(row) for row in radii.tolist()],
                [tuple(row) for row in outputs],
            )
        results = [self._row(ids) for ids in rows]
        return [radii for radii, _ in results], [outputs for _, outputs in results]
