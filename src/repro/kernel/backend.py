"""Kernel backend selection: numpy fast path or pure-stdlib fallback.

The batch kernel has two interchangeable executors for its vectorised
decision rules:

* ``"numpy"`` — array expressions over whole assignment matrices; the fast
  path whenever numpy is importable;
* ``"python"`` — plain loops over tuples; always available, used both as
  the degradation path on numpy-free installs and as the reference
  implementation the property tests hold the numpy path to.

The default backend is **selected once per process**, on the first kernel
use (so merely importing the library never pays a numpy import):
``REPRO_KERNEL`` (values ``numpy`` or ``python``) wins when set, otherwise
numpy is probed and the stdlib fallback is used when the probe fails.
When ``REPRO_KERNEL=python`` is set, numpy is *never imported* anywhere on
the kernel path — a guarantee the test suite enforces with a subprocess
check — so the stdlib fallback stays honest.  Individual
:class:`~repro.kernel.compile.CompiledInstance` objects can still override
the default per instance (the benchmarks compare both backends in one
process).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.errors import ConfigurationError

#: Environment variable overriding the backend choice.
KERNEL_ENV = "REPRO_KERNEL"

#: The recognised backend names.
KERNEL_BACKENDS = ("numpy", "python")

_numpy_module = None
_numpy_probed = False


def _probe_numpy():
    """Import numpy at most once; remember the outcome."""
    global _numpy_module, _numpy_probed
    if not _numpy_probed:
        _numpy_probed = True
        try:
            import numpy  # noqa: PLC0415 - deliberate lazy, optional import

            _numpy_module = numpy
        except ImportError:
            _numpy_module = None
    return _numpy_module


def _select_default() -> str:
    """Resolve the process default from ``REPRO_KERNEL`` / availability."""
    requested = os.environ.get(KERNEL_ENV, "").strip().lower()
    if requested == "python":
        return "python"
    if requested == "numpy":
        # Availability is checked lazily, on first use, so that merely
        # importing the library under a forced-but-missing backend still
        # works; compile_instance raises a clear error instead.
        return "numpy"
    if requested:
        raise ConfigurationError(
            f"{KERNEL_ENV} must be one of {', '.join(KERNEL_BACKENDS)}; "
            f"got {requested!r}"
        )
    return "numpy" if _probe_numpy() is not None else "python"


#: The process-wide default backend; resolved (and frozen) on first use so
#: that importing the library costs no numpy import.
_default_backend: Optional[str] = None


def active_backend() -> str:
    """The backend new :class:`CompiledInstance` objects use by default."""
    global _default_backend
    if _default_backend is None:
        _default_backend = _select_default()
    return _default_backend


def resolve_backend(backend: Optional[str]) -> str:
    """Validate an explicit backend choice (``None`` means the default).

    A resolved ``"numpy"`` backend is guaranteed importable: asking for it
    on a numpy-free install raises :class:`~repro.errors.ConfigurationError`
    with the installation hint instead of failing deep inside a batch.
    """
    name = active_backend() if backend is None else str(backend).strip().lower()
    if name not in KERNEL_BACKENDS:
        raise ConfigurationError(
            f"unknown kernel backend {backend!r}; known: {', '.join(KERNEL_BACKENDS)}"
        )
    if name == "numpy" and _probe_numpy() is None:
        raise ConfigurationError(
            "the numpy kernel backend was requested but numpy is not "
            "installed; pip install 'repro-local-average[fast]' or set "
            f"{KERNEL_ENV}=python"
        )
    return name


def numpy_available() -> bool:
    """Whether the numpy backend can actually run in this process.

    Respects ``REPRO_KERNEL=python``: with the stdlib backend forced, numpy
    is reported unavailable *without probing it*, preserving the
    no-numpy-import guarantee of that mode.
    """
    if os.environ.get(KERNEL_ENV, "").strip().lower() == "python":
        return False
    return _probe_numpy() is not None


def numpy_module():
    """The numpy module (resolving it on first use); raises when missing."""
    module = _probe_numpy()
    if module is None:
        raise ConfigurationError(
            "numpy is not installed; pip install 'repro-local-average[fast]' "
            f"or set {KERNEL_ENV}=python"
        )
    return module
