"""Vectorised dependency-cone rules for the greedy-by-ID family.

The greedy-by-ID algorithms (greedy colouring, greedy MIS, and the MIS-based
ring 3-colouring built on top of them) all decide through
:func:`repro.algorithms.priority_resolution.resolve_by_descending_id`: a node
outputs once its ball contains its whole *dependency cone* — the closure of
itself under edges towards strictly higher identifiers — together with every
cone member's neighbourhood.  That characterisation turns the per-ball
recursion into two batchable ingredients:

* an assignment-independent table ``extent[v][u]`` (the first radius at which
  ``v`` sees all of ``u``'s neighbours, precomputed once per instance by
  :func:`~repro.algorithms.priority_resolution.neighborhood_extent_table`);
* a per-row cone computation: ``radius(v) = max(extent[v][u] for u in
  cone(v))`` and the greedy outputs themselves, both products of one
  descending-identifier sweep
  (:func:`~repro.algorithms.priority_resolution.resolve_assignment_row`).

The stdlib path runs the sweep with integer bitmasks per row; the numpy path
computes the cone closure of all rows at once (boolean matrix squaring of
the higher-identifier relation) and resolves outputs as batched fixpoint
iterations, which converge within the longest strictly-increasing-ID path
because every node's value depends only on strictly higher neighbours.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.algorithms.priority_resolution import (
    neighborhood_extent_table,
    resolve_assignment_row,
)
from repro.kernel.rules import KernelRule

if TYPE_CHECKING:  # pragma: no cover - imports for type checkers only
    from repro.kernel.compile import CompiledInstance

Rows = Sequence[tuple[int, ...]]


def _mask_extent(mask: int, extent_row: Sequence[int]) -> int:
    """Largest ``extent_row`` entry over the set bits of ``mask``."""
    best = 0
    while mask:
        low = mask & -mask
        value = extent_row[low.bit_length() - 1]
        if value > best:
            best = value
        mask ^= low
    return best


class _ConeRule(KernelRule):
    """Shared machinery of the dependency-cone rules."""

    vectorized = True

    def __init__(self, instance: "CompiledInstance") -> None:
        self._backend = instance.backend
        self._n = instance.n
        self._indptr = instance.indptr
        self._indices = instance.indices
        self._extent = neighborhood_extent_table(
            instance.indptr, instance.indices, instance.discovery, instance.distances
        )
        self._np_tables = None

    # ------------------------------------------------------------------
    # numpy helpers (imported lazily so REPRO_KERNEL=python stays numpy-free)
    # ------------------------------------------------------------------
    def _tables(self):
        """Static per-instance arrays, built on the first numpy batch."""
        if self._np_tables is None:
            from repro.kernel.backend import numpy_module

            np = numpy_module()
            n = self._n
            adjacency = np.zeros((n, n), dtype=bool)
            for v in range(n):
                for k in range(self._indptr[v], self._indptr[v + 1]):
                    adjacency[v, self._indices[k]] = True
            self._np_tables = (
                np,
                adjacency,
                np.asarray(self._extent, dtype=np.int64),
                np.eye(n, dtype=bool),
            )
        return self._np_tables

    def _numpy_state(self, rows: Rows):
        """Per-batch higher-ID relation and its reflexive-transitive closure."""
        np, adjacency, extent, eye = self._tables()
        ids = np.asarray(rows, dtype=np.int64)
        # higher[b, u, w]: w is a neighbour of u carrying a larger identifier.
        higher = adjacency[None, :, :] & (ids[:, None, :] > ids[:, :, None])
        closure = higher | eye[None, :, :]
        while True:
            counts = closure.astype(np.int32)
            squared = (counts @ counts) > 0
            if np.array_equal(squared, closure):
                break
            closure = squared
        return np, ids, higher, closure, extent

    def _numpy_mis(self, np, higher):
        """Greedy MIS membership per row, as a batched fixpoint iteration."""
        batch, n = higher.shape[:2]
        in_mis = np.ones((batch, n), dtype=bool)
        for _ in range(n + 1):
            new = ~((higher & in_mis[:, None, :]).any(axis=2))
            if np.array_equal(new, in_mis):
                break
            in_mis = new
        return in_mis

    def _numpy_colors(self, np, higher):
        """Greedy colours per row: batched mex over higher-neighbour colours."""
        batch, n = higher.shape[:2]
        max_degree = max(
            self._indptr[v + 1] - self._indptr[v] for v in range(n)
        )
        palette = max_degree + 1  # greedy never needs colour > degree
        colors = np.zeros((batch, n), dtype=np.int64)
        for _ in range(n + 1):
            used = np.zeros((batch, n, palette + 1), dtype=bool)
            for color in range(palette):
                used[:, :, color] = (higher & (colors[:, None, :] == color)).any(axis=2)
            new = (~used).argmax(axis=2).astype(np.int64)
            if np.array_equal(new, colors):
                break
            colors = new
        return colors


class GreedyConeRule(_ConeRule):
    """Vectorised greedy colouring / greedy MIS by descending identifier.

    ``radius(v)`` is the largest neighbourhood extent over ``v``'s dependency
    cone; the output is the node's value in the global greedy recursion
    (which the ball recursion reproduces exactly once the cone is visible).
    """

    def __init__(self, instance: "CompiledInstance", problem: str) -> None:
        super().__init__(instance)
        if problem not in ("coloring", "mis"):
            raise ValueError(f"unknown greedy-by-ID problem {problem!r}")
        self._problem = problem
        self.name = f"greedy-cone-{problem}"

    # -- stdlib path ----------------------------------------------------
    def _row(self, ids):
        cones, values = resolve_assignment_row(
            ids, self._indptr, self._indices, self._problem
        )
        radii = tuple(
            _mask_extent(cones[v], self._extent[v]) for v in range(self._n)
        )
        return radii, tuple(values)

    # -- numpy path -----------------------------------------------------
    def _batch_numpy(self, rows: Rows, want_outputs: bool):
        np, _, higher, closure, extent = self._numpy_state(rows)
        radii = np.where(closure, extent[None, :, :], 0).max(axis=2)
        if not want_outputs:
            return radii, None
        if self._problem == "mis":
            values = self._numpy_mis(np, higher)
        else:
            values = self._numpy_colors(np, higher)
        return radii, values

    # -- KernelRule interface -------------------------------------------
    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        if self._backend == "numpy":
            radii, _ = self._batch_numpy(rows, want_outputs=False)
            return [tuple(row) for row in radii.tolist()]
        return [self._row(ids)[0] for ids in rows]

    def batch_radii_outputs(self, rows: Rows):
        if self._backend == "numpy":
            radii, values = self._batch_numpy(rows, want_outputs=True)
            return (
                [tuple(row) for row in radii.tolist()],
                [tuple(row) for row in values.tolist()],
            )
        results = [self._row(ids) for ids in rows]
        return [radii for radii, _ in results], [outputs for _, outputs in results]


class RingMISConeRule(_ConeRule):
    """Vectorised MIS-based ring 3-colouring.

    A member of the greedy MIS outputs ``0`` once its own cone is visible; a
    non-member additionally waits for both ring neighbours' membership, so
    its radius spans the union of the three cones.  Colours follow
    :class:`~repro.algorithms.ring_coloring_via_mis.RingColoringViaMIS`:
    members take 0, nodes between two members take 1, and the identifier
    breaks the tie between two adjacent non-members (only ever two in a row,
    by maximality).
    """

    name = "ring-mis-cone"

    def __init__(self, instance: "CompiledInstance") -> None:
        super().__init__(instance)
        # On a cycle every position has exactly two neighbours.
        self._left = tuple(
            self._indices[self._indptr[v]] for v in range(self._n)
        )
        self._right = tuple(
            self._indices[self._indptr[v] + 1] for v in range(self._n)
        )

    # -- stdlib path ----------------------------------------------------
    def _row(self, ids):
        cones, in_mis = resolve_assignment_row(
            ids, self._indptr, self._indices, "mis"
        )
        radii = []
        outputs = []
        for v in range(self._n):
            left = self._left[v]
            right = self._right[v]
            if in_mis[v]:
                mask = cones[v]
                output = 0
            else:
                mask = cones[v] | cones[left] | cones[right]
                if in_mis[left] and in_mis[right]:
                    output = 1
                elif in_mis[left]:
                    output = 1 if ids[v] > ids[right] else 2
                else:
                    output = 1 if ids[v] > ids[left] else 2
            radii.append(_mask_extent(mask, self._extent[v]))
            outputs.append(output)
        return tuple(radii), tuple(outputs)

    # -- numpy path -----------------------------------------------------
    def _batch_numpy(self, rows: Rows):
        np, ids, higher, closure, extent = self._numpy_state(rows)
        if self._np_ring is None:
            self._np_ring = (
                np.asarray(self._left, dtype=np.int64),
                np.asarray(self._right, dtype=np.int64),
            )
        left, right = self._np_ring
        in_mis = self._numpy_mis(np, higher)
        own_reach = np.where(closure, extent[None, :, :], 0).max(axis=2)
        union = closure | closure[:, left, :] | closure[:, right, :]
        full_reach = np.where(union, extent[None, :, :], 0).max(axis=2)
        radii = np.where(in_mis, own_reach, full_reach)
        left_member = in_mis[:, left]
        right_member = in_mis[:, right]
        other_ids = np.where(left_member, ids[:, right], ids[:, left])
        outputs = np.where(
            in_mis,
            0,
            np.where(
                left_member & right_member,
                1,
                np.where(ids > other_ids, 1, 2),
            ),
        )
        return radii, outputs

    _np_ring = None

    # -- KernelRule interface -------------------------------------------
    def batch_radii(self, rows: Rows) -> list[tuple[int, ...]]:
        if self._backend == "numpy":
            radii, _ = self._batch_numpy(rows)
            return [tuple(row) for row in radii.tolist()]
        return [self._row(ids)[0] for ids in rows]

    def batch_radii_outputs(self, rows: Rows):
        if self._backend == "numpy":
            radii, outputs = self._batch_numpy(rows)
            return (
                [tuple(row) for row in radii.tolist()],
                [tuple(row) for row in outputs.tolist()],
            )
        results = [self._row(ids) for ids in rows]
        return [radii for radii, _ in results], [outputs for _, outputs in results]
