"""Sharded, memory-bounded kernel execution for million-node instances.

:class:`~repro.kernel.compile.CompiledInstance` precomputes per-centre BFS
plans — O(n · ball) memory — which is exactly right up to ~10^4 nodes and
exactly wrong at 10^6.  This module is the large-n path: no plans at all.
A :class:`ScaleRule` evaluates centres directly against the streamed CSR
adjacency of a :class:`~repro.topology.stream.CSRTopology`, one early-stop
BFS per centre, and a :class:`ShardedKernelExecutor` splits the work into
**row blocks × centre chunks** over a :class:`~repro.engine.batch.BatchExecutor`
process pool.

Determinism is structural, not scheduled: every radius is a pure integer
function of ``(topology, n, seed, row)``, the task decomposition is fixed by
``row_block``/``center_chunk`` (never by the worker count), per-row identifier
permutations derive from :func:`~repro.engine.batch.derive_task_seed`, and
partial aggregates (sum, max) merge in task order — so results are
bit-identical at any worker count and any chunk size, which
``tests/property/test_property_scale.py`` asserts.

Workers never receive megabytes over a pipe: a task payload carries the CSR
*spec* ``(topology, n, seed)`` plus scalar coordinates — and, when the warm
pool's shared-memory transport is live, :class:`~repro.engine.pool.ShmRef`
handles to the CSR arrays (and to explicit row matrices), so workers attach
the published buffers zero-copy instead of rebuilding or unpickling them.
Reconstructed CSRs, rules and row permutations are cached per worker via
:func:`~repro.engine.pool.worker_cache` (the hit counts surface as
``pool.worker_cache_hits``), and tasks carry row-block affinity keys so all
centre chunks of one sampled row land on the worker that already holds that
row's state.

Algorithms opt in through
:meth:`~repro.core.algorithm.BallAlgorithm.compile_scale_rule`;
:data:`SCALE_ALGORITHMS` names the registry entries that do (the paper's
largest-ID algorithm, whose :class:`MaxScanScaleRule` fuses the BFS with the
stopping rule so the expected per-centre work is the *output* radius, not
the graph size).  On the paper's own topology — the cycle — the algorithm
specialises further: :class:`RingScanScaleRule` replaces the per-centre BFS
with a whole-row vectorised ring sweep (every undecided centre advances one
ring distance per round), which removes the ``O(log n)`` per-centre factor
and keeps nodes/s flat from 10^4 to 10^6.
"""

from __future__ import annotations

import resource
import time
from array import array
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.engine.batch import BatchExecutor, derive_task_seed
from repro.engine.pool import ShmRef, fetch_memoryview, worker_cache
from repro.errors import ConfigurationError, IdentifierError, TopologyError
from repro.kernel.backend import numpy_available, numpy_module
from repro.obs import metrics as _metrics
from repro.obs.spans import obs_enabled as _obs_enabled, span as _obs_span
from repro.topology.stream import CSRTopology, build_csr
from repro.utils.rng import make_rng

#: Registry names whose algorithms implement ``compile_scale_rule``.  The
#: Query layer validates ``scale`` mode against this set eagerly;
#: ``tests/kernel/test_shard.py`` asserts it matches the hooks.
SCALE_ALGORITHMS = frozenset({"largest-id"})

#: Default rows per sharded task (each row is one sampled assignment).
DEFAULT_ROW_BLOCK = 4

#: Default centres per sharded task.  16 chunks at n = 10^6: coarse enough
#: to amortise the per-task CSR lookup, fine enough to fan out.
DEFAULT_CENTER_CHUNK = 65536


class ScaleRule:
    """Plan-free evaluation of one algorithm against a CSR topology."""

    #: Short rule identifier recorded in result rows and benchmark artifacts.
    name: str = "scale-rule"

    #: Rules that evaluate a whole row at once (see :class:`RingScanScaleRule`)
    #: set this; :func:`run_scale_task` then computes :meth:`full_radii` once
    #: per row, caches it per worker, and serves centre chunks by slicing.
    full_row: bool = False

    def row_radii(self, ids: Sequence[int], start: int, stop: int) -> list[int]:
        """Output radii of centres ``start..stop-1`` under one assignment."""
        raise NotImplementedError

    def row_stats(self, ids: Sequence[int], start: int, stop: int) -> tuple[int, int]:
        """``(sum, max)`` of the radii of centres ``start..stop-1``."""
        radii = self.row_radii(ids, start, stop)
        return sum(radii), max(radii)

    def full_radii(self, ids: Sequence[int]) -> Sequence[int]:
        """All ``n`` radii of one assignment (only on ``full_row`` rules)."""
        raise NotImplementedError


class MaxScanScaleRule(ScaleRule):
    """Largest-ID at scale: early-stop BFS fused with the stopping rule.

    A centre's radius is the BFS distance to the nearest strictly larger
    identifier — so the BFS stops at the first layer containing one, and the
    expected work per centre is proportional to the (typically tiny) output
    ball, not to ``n``.  Only the centre carrying the row's maximum
    identifier saturates; its radius is its eccentricity, which is
    assignment-independent and therefore cached across rows.

    Bit-identical to :class:`~repro.kernel.rules.MaxScanRule` on the
    materialised graph: both compute the same uniquely defined integers
    (``tests/kernel/test_shard.py`` cross-checks them).
    """

    name = "max-scan-stream"

    def __init__(self, csr: CSRTopology) -> None:
        self._csr = csr
        self._indptr = csr.indptr
        self._indices = csr.indices
        self._n = csr.n
        self._visited: Optional[array] = None
        self._stamp = 0
        # centre -> eccentricity; only ever holds argmax centres seen so far.
        self._eccentricity: dict[int, int] = {}

    def _radius(self, ids: Sequence[int], center: int) -> int:
        """Distance to the nearest larger identifier (eccentricity if none)."""
        if self._visited is None:
            self._visited = array("q", bytes(8 * self._n))
        indptr, indices, visited = self._indptr, self._indices, self._visited
        self._stamp += 1
        stamp = self._stamp
        own = ids[center]
        visited[center] = stamp
        frontier = [center]
        radius = 0
        while True:
            next_layer = []
            for u in frontier:
                for k in range(indptr[u], indptr[u + 1]):
                    w = indices[k]
                    if visited[w] != stamp:
                        visited[w] = stamp
                        next_layer.append(w)
            if not next_layer:
                # The whole graph is smaller: this centre holds the global
                # maximum and its radius is its eccentricity.
                self._eccentricity.setdefault(center, radius)
                return radius
            radius += 1
            for w in next_layer:
                if ids[w] > own:
                    return radius
            frontier = next_layer

    def row_radii(self, ids: Sequence[int], start: int, stop: int) -> list[int]:
        row_max = max(ids)
        radii = []
        for v in range(start, stop):
            if ids[v] == row_max:
                cached = self._eccentricity.get(v)
                radii.append(cached if cached is not None else self._radius(ids, v))
            else:
                radii.append(self._radius(ids, v))
        return radii

    def row_stats(self, ids: Sequence[int], start: int, stop: int) -> tuple[int, int]:
        row_max = max(ids)
        total = 0
        worst = 0
        for v in range(start, stop):
            if ids[v] == row_max:
                radius = self._eccentricity.get(v)
                if radius is None:
                    radius = self._radius(ids, v)
            else:
                radius = self._radius(ids, v)
            total += radius
            if radius > worst:
                worst = radius
        return total, worst


class RingScanScaleRule(ScaleRule):
    """Largest-ID on the cycle: one vectorised ring sweep per row.

    On a cycle the BFS layer at distance ``r`` from centre ``v`` is exactly
    ``{v - r, v + r} (mod n)``, so a centre's output radius is the first
    ``r`` at which either ring position carries a larger identifier — no
    adjacency walk, no visited set.  The sweep advances *all* undecided
    centres one distance per round with two gather-and-compare array
    operations; a centre leaves the active set the round it decides.  The
    row's maximum identifier never finds a larger one and outputs at its
    eccentricity ``n // 2``.

    This removes the ``O(log n)`` expected per-centre BFS factor of
    :class:`MaxScanScaleRule` — per-row work is ``O(sum of radii)`` with an
    array-speed constant — which is what keeps scale-mode nodes/s flat from
    10^4 to 10^6 (``BENCH_scale.json`` gates the ratio).  Bit-identical to
    the BFS rule: both compute the same uniquely defined integers, which the
    parity tests in ``tests/kernel/test_shard.py`` cross-check.

    Runs on the numpy backend when available and falls back to a pure-Python
    two-pointer scan under ``REPRO_KERNEL=python`` (same integers, smaller
    constant than the BFS either way).
    """

    name = "ring-scan-stream"
    full_row = True

    #: Below this many undecided centres the sweep finishes them directly
    #: (per-centre nearest-larger scan) instead of paying whole-array rounds
    #: for a tiny tail.  Any threshold yields the same radii.
    TAIL_DIRECT = 64

    def __init__(self, csr: CSRTopology) -> None:
        if csr.topology != "cycle":
            raise ConfigurationError(
                f"RingScanScaleRule requires a cycle, got {csr.topology!r}"
            )
        self._csr = csr
        self._n = csr.n

    def full_radii(self, ids: Sequence[int]) -> Sequence[int]:
        if numpy_available():
            return self._full_radii_numpy(ids)
        return self._full_radii_python(ids)

    def _full_radii_numpy(self, ids: Sequence[int]):
        np = numpy_module()
        n = self._n
        a = np.frombuffer(ids, dtype=np.int64) if isinstance(ids, array) else np.asarray(
            ids, dtype=np.int64
        )
        radii = np.zeros(n, dtype=np.int64)
        half = n // 2
        largest = int(a.argmax())
        active = np.arange(n, dtype=np.int64)
        active = active[active != largest]
        own = a[active]
        r = 0
        while active.size:
            r += 1
            if active.size <= self.TAIL_DIRECT or r > half:
                # Finish stragglers directly: nearest larger id by ring
                # distance (min of clockwise and counter-clockwise).
                for pos, mine in zip(active.tolist(), own.tolist()):
                    higher = np.nonzero(a > mine)[0]
                    delta = np.abs(higher - pos)
                    radii[pos] = int(np.minimum(delta, n - delta).min())
                break
            left = a[(active - r) % n]
            right = a[(active + r) % n]
            decided = (left > own) | (right > own)
            if decided.any():
                radii[active[decided]] = r
                keep = ~decided
                active = active[keep]
                own = own[keep]
        radii[largest] = half
        return radii

    def _full_radii_python(self, ids: Sequence[int]) -> list[int]:
        n = self._n
        half = n // 2
        radii = [0] * n
        largest = max(range(n), key=ids.__getitem__)
        for v in range(n):
            if v == largest:
                radii[v] = half
                continue
            own = ids[v]
            r = 1
            # Some strictly larger id sits within ring distance n // 2, so
            # this terminates with r <= half for every non-maximum centre.
            while ids[v - r] <= own and ids[(v + r) % n] <= own:
                r += 1
            radii[v] = r
        return radii

    def row_radii(self, ids: Sequence[int], start: int, stop: int) -> list[int]:
        return [int(radius) for radius in self.full_radii(ids)[start:stop]]

    def row_stats(self, ids: Sequence[int], start: int, stop: int) -> tuple[int, int]:
        return segment_stats(self.full_radii(ids), start, stop)


def segment_stats(radii: Sequence[int], start: int, stop: int) -> tuple[int, int]:
    """``(sum, max)`` of one centre range of a full-row radii vector."""
    segment = radii[start:stop]
    if hasattr(segment, "sum"):  # numpy path
        return int(segment.sum()), int(segment.max())
    return sum(segment), max(segment)


def scale_rule_for(algorithm, csr: CSRTopology) -> ScaleRule:
    """The algorithm's scale rule, or a clear error when it has none."""
    rule = algorithm.compile_scale_rule(csr)
    if rule is None:
        raise ConfigurationError(
            f"algorithm {algorithm.name!r} has no scale rule "
            f"(compile_scale_rule returned None); scale-capable algorithms: "
            f"{', '.join(sorted(SCALE_ALGORITHMS))}"
        )
    return rule


def scale_row_ids(n: int, base_seed: int, row_index: int) -> list[int]:
    """The deterministic identifier permutation of one sampled row.

    A pure function of ``(n, base_seed, row_index)`` — workers regenerate
    rows locally instead of receiving 8 MB of identifiers per task.
    """
    ids = list(range(n))
    make_rng(derive_task_seed(base_seed, "scale", row_index)).shuffle(ids)
    return ids


# ----------------------------------------------------------------------
# worker-side caches (pool-backed; payloads carry scalars and shm handles)
# ----------------------------------------------------------------------
def _csr_for_spec(
    spec: tuple[str, int, int], refs: Optional[tuple[ShmRef, ShmRef]] = None
) -> CSRTopology:
    """The CSR for one spec: attach the published arrays, else rebuild."""

    def build() -> CSRTopology:
        if refs is not None:
            try:
                indptr = fetch_memoryview(refs[0]).cast("q")
                indices = fetch_memoryview(refs[1]).cast("q")
                return CSRTopology(spec[0], spec[1], spec[2], indptr, indices)
            except LookupError:
                pass  # segment evicted or publisher gone: rebuild from spec
        return build_csr(*spec)

    return worker_cache("shard.csr", spec, build)


def _rule_for_spec(
    spec: tuple[str, int, int],
    algorithm_name: str,
    refs: Optional[tuple[ShmRef, ShmRef]] = None,
) -> ScaleRule:
    def build() -> ScaleRule:
        from repro.engine.campaign import make_ball_algorithm

        csr = _csr_for_spec(spec, refs)
        return scale_rule_for(make_ball_algorithm(algorithm_name, csr.n), csr)

    return worker_cache("shard.rule", (spec, algorithm_name), build)


def _row_for(n: int, base_seed: int, row_index: int) -> array:
    """One cached row permutation, packed as ``array('q')`` (8 bytes/id)."""
    return worker_cache(
        "shard.row",
        (n, base_seed, row_index),
        lambda: array("q", scale_row_ids(n, base_seed, row_index)),
    )


def _rows_from_payload(rows) -> Sequence[Sequence[int]]:
    """Materialise the explicit-row field: inline tuples or one shm matrix."""
    if rows and rows[0] == "rows-ref":
        _, offset, count, width, ref = rows
        flat = fetch_memoryview(ref).cast("q")
        return [
            flat[(offset + index) * width : (offset + index + 1) * width]
            for index in range(count)
        ]
    return rows


def run_scale_task(payload: tuple) -> list:
    """Worker entry point: one ``(rows × centre range)`` shard.

    Two payload shapes, discriminated by the first element (each may carry
    one trailing element: the :class:`~repro.engine.pool.ShmRef` pair of the
    published CSR arrays, absent on the serial path or when shared memory is
    unavailable):

    * ``("stats", spec, algorithm, base_seed, row_start, row_stop, c0, c1[, refs])``
      → per-row ``(sum, max)`` partials over the centre range;
    * ``("radii", spec, algorithm, rows, c0, c1[, refs])``
      → per-row radii lists over the centre range (explicit-row path), where
      ``rows`` is either a tuple of inline identifier rows or
      ``("rows-ref", offset, count, width, ref)`` naming a published row
      matrix.

    ``full_row`` rules compute each row's complete radii vector once, cache
    it per worker keyed by ``(spec, algorithm, seed, row)``, and serve every
    centre chunk by slicing — which is why the executor gives all chunks of
    one row block the same affinity key.
    """
    kind = payload[0]
    if kind == "stats":
        _, spec, algorithm_name, base_seed, row_start, row_stop, c0, c1 = payload[:8]
        refs = payload[8] if len(payload) > 8 else None
        rule = _rule_for_spec(spec, algorithm_name, refs)
        n = spec[1]
        if rule.full_row:
            partials = []
            for row in range(row_start, row_stop):
                radii = worker_cache(
                    "shard.radii",
                    (spec, algorithm_name, base_seed, row),
                    lambda row=row: rule.full_radii(_row_for(n, base_seed, row)),
                )
                partials.append(segment_stats(radii, c0, c1))
            return partials
        return [
            rule.row_stats(_row_for(n, base_seed, row), c0, c1)
            for row in range(row_start, row_stop)
        ]
    _, spec, algorithm_name, rows, c0, c1 = payload[:6]
    refs = payload[6] if len(payload) > 6 else None
    rule = _rule_for_spec(spec, algorithm_name, refs)
    return [rule.row_radii(ids, c0, c1) for ids in _rows_from_payload(rows)]


@dataclass(frozen=True)
class ScaleRowStats:
    """Folded per-row aggregates of one sampled assignment."""

    row: int
    sum_radius: int
    max_radius: int
    average_radius: float


class ShardedKernelExecutor:
    """Row-block × centre-chunk sharding of scale evaluation over processes.

    The decomposition — and therefore every partial and its merge order —
    is fixed by ``row_block`` and ``center_chunk`` alone; ``workers`` only
    decides how many tasks run concurrently.  Results are bit-identical at
    any worker count.  With ``workers == 1`` every shard runs in-process
    under a ``kernel.shard`` observability span, so ``repro query --profile``
    attributes wall time per shard.
    """

    def __init__(
        self,
        csr: CSRTopology,
        algorithm,
        workers: int = 1,
        row_block: int = DEFAULT_ROW_BLOCK,
        center_chunk: int = DEFAULT_CENTER_CHUNK,
    ) -> None:
        if row_block < 1:
            raise ConfigurationError(f"row_block must be >= 1, got {row_block}")
        if center_chunk < 1:
            raise ConfigurationError(f"center_chunk must be >= 1, got {center_chunk}")
        self.csr = csr
        self.algorithm = algorithm
        self.workers = workers
        self.row_block = row_block
        self.center_chunk = center_chunk
        self._rule = scale_rule_for(algorithm, csr)

    def _center_ranges(self) -> list[tuple[int, int]]:
        n = self.csr.n
        return [
            (start, min(n, start + self.center_chunk))
            for start in range(0, n, self.center_chunk)
        ]

    def _run_tasks(self, payloads: list[tuple], keys: Optional[list] = None) -> list:
        """Execute shards (serial path instrumented, parallel path pooled).

        On the pooled path the CSR arrays are published once into shared
        memory and every payload carries their handles; ``keys`` (row-block
        identities) pin all centre chunks of one row block to one worker so
        its cached row state is reused, never duplicated.
        """
        if self.workers > 1 and len(payloads) > 1:
            executor = BatchExecutor(self.workers)
            pool = executor.pool
            pinned: list[ShmRef] = []
            if pool is not None:
                indptr_ref = pool.publish(self.csr.indptr)
                indices_ref = pool.publish(self.csr.indices)
                if indptr_ref is not None and indices_ref is not None:
                    pinned = [indptr_ref, indices_ref]
                    refs = (indptr_ref, indices_ref)
                    payloads = [payload + (refs,) for payload in payloads]
                else:
                    pool.release(indptr_ref)
                    pool.release(indices_ref)
            try:
                return executor.map(run_scale_task, payloads, keys=keys)
            finally:
                for ref in pinned:
                    pool.release(ref)
        results = []
        for payload in payloads:
            if _obs_enabled():
                rows = (
                    payload[5] - payload[4]
                    if payload[0] == "stats"
                    else len(payload[3])
                )
                _metrics.add("kernel.shard.tasks")
                with _obs_span(
                    "kernel.shard",
                    rows=rows,
                    centers=payload[-1] - payload[-2],
                    rule=self._rule.name,
                ):
                    results.append(run_scale_task(payload))
            else:
                results.append(run_scale_task(payload))
        return results

    # ------------------------------------------------------------------
    # sampled measures: the million-node path
    # ------------------------------------------------------------------
    def sample_measures(self, samples: int, seed: int = 0) -> list[ScaleRowStats]:
        """Per-row (sum/max/average radius) stats of ``samples`` seeded rows.

        Memory is O(row ids + CSR) regardless of ``samples``: no radii
        matrix is ever materialised.  Rows derive from
        :func:`scale_row_ids`, so the stats are a pure function of
        ``(csr.spec, seed, samples)``.
        """
        if samples < 1:
            raise ConfigurationError(f"samples must be positive, got {samples}")
        spec = self.csr.spec
        name = self.algorithm.name
        ranges = self._center_ranges()
        payloads = [
            ("stats", spec, name, seed, row_start, min(samples, row_start + self.row_block), c0, c1)
            for row_start in range(0, samples, self.row_block)
            for (c0, c1) in ranges
        ]
        keys = [
            row_start
            for row_start in range(0, samples, self.row_block)
            for _ in ranges
        ]
        results = self._run_tasks(payloads, keys=keys)
        # Merge partials per row, in centre-range order within each block.
        n = self.csr.n
        stats: list[ScaleRowStats] = []
        index = 0
        for row_start in range(0, samples, self.row_block):
            row_stop = min(samples, row_start + self.row_block)
            block = [(0, 0)] * (row_stop - row_start)
            for _ in ranges:
                partials = results[index]
                index += 1
                block = [
                    (total + part_sum, max(worst, part_max))
                    for (total, worst), (part_sum, part_max) in zip(block, partials)
                ]
            for offset, (total, worst) in enumerate(block):
                stats.append(
                    ScaleRowStats(
                        row=row_start + offset,
                        sum_radius=total,
                        max_radius=worst,
                        average_radius=total / n,
                    )
                )
        return stats

    # ------------------------------------------------------------------
    # explicit rows: the parity/test path
    # ------------------------------------------------------------------
    def batch_radii(self, ids_matrix: Sequence) -> list[tuple[int, ...]]:
        """Full radii rows for explicit assignments (small-n parity surface).

        Validates like the compiled kernel and returns exactly what
        :meth:`CompiledInstance.batch_radii
        <repro.kernel.compile.CompiledInstance.batch_radii>` returns on the
        materialised graph — the property wall asserts the equality.
        """
        n = self.csr.n
        rows = []
        for row in ids_matrix:
            identifiers = row.identifiers() if hasattr(row, "identifiers") else row
            values = tuple(int(identifier) for identifier in identifiers)
            if len(values) != n:
                raise TopologyError(
                    f"assignment row covers {len(values)} positions "
                    f"but topology has {n}"
                )
            if len(set(values)) != n:
                raise IdentifierError("identifiers must be pairwise distinct")
            rows.append(values)
        if not rows:
            return []
        spec = self.csr.spec
        name = self.algorithm.name
        ranges = self._center_ranges()
        blocks = [
            rows[start : start + self.row_block]
            for start in range(0, len(rows), self.row_block)
        ]
        parallel = self.workers > 1 and len(blocks) * len(ranges) > 1
        pool = BatchExecutor(self.workers).pool if parallel else None
        matrix_ref = None
        if pool is not None:
            # One flat row-major int64 matrix, published once; every task
            # references its block by (offset, count) instead of carrying
            # n identifiers per row inline.
            flat = array("q")
            for row in rows:
                flat.extend(row)
            matrix_ref = pool.publish(flat)
        if matrix_ref is not None:
            row_fields = [
                ("rows-ref", start, len(block), n, matrix_ref)
                for start, block in zip(range(0, len(rows), self.row_block), blocks)
            ]
        else:
            row_fields = [tuple(block) for block in blocks]
        payloads = [
            ("radii", spec, name, row_field, c0, c1)
            for row_field in row_fields
            for (c0, c1) in ranges
        ]
        keys = [
            block_index for block_index in range(len(blocks)) for _ in ranges
        ]
        try:
            results = self._run_tasks(payloads, keys=keys)
        finally:
            if pool is not None:
                pool.release(matrix_ref)
        radii_rows: list[tuple[int, ...]] = []
        index = 0
        for block in blocks:
            pieces = [results[index + k] for k in range(len(ranges))]
            index += len(ranges)
            for offset in range(len(block)):
                merged: list[int] = []
                for piece in pieces:
                    merged.extend(piece[offset])
                radii_rows.append(tuple(merged))
        return radii_rows

    def describe(self) -> dict:
        """JSON-friendly identity (result rows, benchmark artifacts)."""
        return {
            "rule": self._rule.name,
            "workers": self.workers,
            "row_block": self.row_block,
            "center_chunk": self.center_chunk,
            "topology": self.csr.describe(),
        }


def peak_rss_bytes() -> int:
    """Peak resident set size of this process and its children, in bytes.

    Prefers ``VmHWM`` from ``/proc/self/status`` for the process itself:
    unlike ``ru_maxrss`` (kept in the signal struct, so it survives
    ``execve`` and a probe subprocess forked off a large parent would
    inherit the parent's high-water mark), ``VmHWM`` lives in the memory
    map and resets on exec — it measures only what *this* program
    resident-peaked at.  Falls back to ``ru_maxrss`` where ``/proc`` is
    unavailable.
    """
    self_bytes = _vm_hwm_bytes()
    if self_bytes is None:
        self_bytes = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    children_bytes = (
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * 1024
    )
    return max(self_bytes, children_bytes)


def _vm_hwm_bytes() -> Optional[int]:
    """``VmHWM`` of this process in bytes, or ``None`` without procfs."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def run_scale_probe(
    topology: str,
    n: int,
    algorithm: str = "largest-id",
    samples: int = 2,
    seed: int = 0,
    workers: int = 1,
    row_block: int = DEFAULT_ROW_BLOCK,
    center_chunk: int = DEFAULT_CENTER_CHUNK,
) -> dict:
    """One end-to-end scale measurement, JSON-friendly (the bench harness).

    ``benchmarks/test_bench_scale.py`` runs this in a fresh subprocess per
    size so the recorded ``peak_rss_bytes`` is the probe's own high-water
    mark, not the test session's.
    """
    from repro.engine.campaign import make_ball_algorithm

    build_started = time.perf_counter()
    csr = build_csr(topology, n, seed=seed)
    build_s = time.perf_counter() - build_started
    executor = ShardedKernelExecutor(
        csr,
        make_ball_algorithm(algorithm, n),
        workers=workers,
        row_block=row_block,
        center_chunk=center_chunk,
    )
    started = time.perf_counter()
    stats = executor.sample_measures(samples, seed=seed)
    elapsed = time.perf_counter() - started
    nodes = n * samples
    return {
        "topology": topology,
        "n": n,
        "m": csr.m,
        "algorithm": algorithm,
        "samples": samples,
        "seed": seed,
        "workers": workers,
        "row_block": row_block,
        "center_chunk": center_chunk,
        "build_s": build_s,
        "elapsed_s": elapsed,
        "nodes_per_s": nodes / elapsed if elapsed > 0 else float("inf"),
        "peak_rss_bytes": peak_rss_bytes(),
        "avg_mean": sum(s.average_radius for s in stats) / len(stats),
        "max_mean": sum(s.max_radius for s in stats) / len(stats),
        "rule": executor.describe()["rule"],
    }
