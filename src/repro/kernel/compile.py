"""Compiled instances: one ``(graph, algorithm)`` pair as flat arrays.

Every aggregate measure in the paper — the classic worst case over
identifier assignments, Feuilloley's average measure, the full measure
distributions — evaluates *one* fixed ``(graph, algorithm)`` pair under
*many* assignments.  A :class:`CompiledInstance` hoists everything that
does not depend on the assignment out of that loop, once per pair:

* the CSR adjacency of the graph (``indptr`` / ``indices`` / ``ports``);
* per-centre frontier prefixes in BFS discovery order (reusing the engine's
  :class:`~repro.engine.frontier._CenterPlan` objects, which are cached on
  the graph and shared with every :class:`~repro.engine.frontier.FrontierRunner`);
* each centre's saturation radius and radius cap; and
* a precompiled :class:`~repro.kernel.rules.KernelRule` — vectorised when
  the algorithm offers one
  (:meth:`~repro.core.algorithm.BallAlgorithm.compile_kernel_rule`),
  otherwise the decide-backed :class:`~repro.kernel.rules.RunnerTableRule`
  fallback behind the same interface.

:func:`simulate_batch` then evaluates a whole **matrix** of assignments per
call — rows are assignments, columns are positions — and returns the matrix
of per-node output radii.  The numpy fast path and the pure-stdlib fallback
are chosen at import time (see :mod:`repro.kernel.backend`) and can be
overridden per instance; both are bit-identical to
:meth:`FrontierRunner.run <repro.engine.frontier.FrontierRunner.run>`,
which stays as the single-assignment reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.engine.frontier import center_plan, engine_structure
from repro.errors import IdentifierError, TopologyError
from repro.kernel.backend import resolve_backend
from repro.kernel.rules import KernelRule, RunnerTableRule
from repro.model.graph import Graph
from repro.model.trace import ExecutionTrace, NodeRecord
from repro.obs import metrics as _metrics
from repro.obs.spans import obs_enabled as _obs_enabled, span as _obs_span

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.algorithm import BallAlgorithm

#: Default bound on the fallback rule's decision table, matching the
#: session caches of the adversaries and the API layer.
DEFAULT_MAX_TABLE_ENTRIES = 1 << 18

#: Largest identifier the numpy backend can gather (int64 arrays).  The
#: stdlib backend has no such limit; oversized identifiers on the numpy
#: path are rejected with a clear error instead of a raw OverflowError.
NUMPY_MAX_IDENTIFIER = 2**63 - 1

#: Default number of assignment rows per kernel call when a consumer
#: streams an unbounded workload (sampling, canonical-leaf cohorts).
#: Large enough to amortise the per-batch dispatch, small enough to keep
#: the working set (rows × n integers) in cache at realistic sizes.
DEFAULT_BATCH_ROWS = 256


@dataclass
class KernelStats:
    """Usage counters of one compiled instance."""

    batches: int = 0
    rows: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly form (result rows, benchmark artifacts)."""
        return {"batches": self.batches, "rows": self.rows}


class CompiledInstance:
    """The assignment-independent arrays of one ``(graph, algorithm)`` pair.

    Parameters
    ----------
    graph, algorithm:
        The fixed instance.  Connectivity and ``algorithm.supports_graph``
        are checked once at construction (disable with ``validate=False``
        when the caller already did).
    backend:
        ``"numpy"`` or ``"python"``; ``None`` uses the process default
        selected at import time (:func:`repro.kernel.backend.active_backend`).
    max_table_entries:
        Bound on the fallback rule's decision table.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: "BallAlgorithm",
        backend: Optional[str] = None,
        max_table_entries: int = DEFAULT_MAX_TABLE_ENTRIES,
        validate: bool = True,
    ) -> None:
        if validate:
            if not graph.is_connected():
                raise TopologyError("the LOCAL simulators require a connected graph")
            if not algorithm.supports_graph(graph):
                raise TopologyError(
                    f"algorithm {algorithm.name!r} does not support graph {graph.name!r}"
                )
        self.graph = graph
        self.algorithm = algorithm
        self.backend = resolve_backend(backend)
        self.max_table_entries = max_table_entries
        self.n = graph.n
        self._csr: Optional[tuple[tuple[int, ...], ...]] = None
        # Frontier prefixes, straight from the shared _CenterPlan objects:
        # discovery[v] lists the ball members of centre v in BFS order,
        # distances[v][i] is the layer (= radius of first visibility) of
        # discovery[v][i], member_counts[v][r] the prefix length of the
        # radius-r ball.
        plans = [center_plan(graph, v) for v in graph.positions()]
        self.discovery = tuple(plan.discovery for plan in plans)
        self.distances = tuple(plan.distances for plan in plans)
        self.member_counts = tuple(tuple(plan.member_counts) for plan in plans)
        self.saturation = tuple(plan.saturation_radius() for plan in plans)
        self.caps = tuple(radius + 1 for radius in self.saturation)
        self.stats = KernelStats()
        # The vectorised rule (or None) is compiled eagerly — it is cheap
        # and callers branch on `vectorized` before ever running a batch.
        # The decide-backed fallback carries a full engine session, so it
        # is only built when a batch actually runs on this instance.
        self._vector_rule: Optional[KernelRule] = algorithm.compile_kernel_rule(self)
        self._fallback_rule: Optional[KernelRule] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def rule(self) -> KernelRule:
        """The instance's batch rule (fallback materialised on first use)."""
        if self._vector_rule is not None:
            return self._vector_rule
        if self._fallback_rule is None:
            self._fallback_rule = RunnerTableRule(self)
        return self._fallback_rule

    @property
    def vectorized(self) -> bool:
        """Whether the instance evaluates batches with array expressions."""
        return self._vector_rule is not None and self._vector_rule.vectorized

    def _csr_arrays(self) -> tuple[tuple[int, ...], ...]:
        """CSR adjacency (built on first access): neighbours of position
        ``v`` are ``indices[indptr[v]:indptr[v + 1]]``, with ``ports[k]``
        the port of the edge on the ``v`` side — the flat-array form of the
        graph for rules (and external tooling) that want to gather against
        adjacency rather than frontier prefixes."""
        if self._csr is None:
            adjacency, _, _ = engine_structure(self.graph)
            indptr = [0]
            indices: list[int] = []
            ports: list[int] = []
            for triples in adjacency:
                for u, port_vu, _ in triples:
                    indices.append(u)
                    ports.append(port_vu)
                indptr.append(len(indices))
            self._csr = (tuple(indptr), tuple(indices), tuple(ports))
        return self._csr

    @property
    def indptr(self) -> tuple[int, ...]:
        """CSR row pointers (see :meth:`_csr_arrays`)."""
        return self._csr_arrays()[0]

    @property
    def indices(self) -> tuple[int, ...]:
        """CSR neighbour stream (see :meth:`_csr_arrays`)."""
        return self._csr_arrays()[1]

    @property
    def ports(self) -> tuple[int, ...]:
        """CSR port stream (see :meth:`_csr_arrays`)."""
        return self._csr_arrays()[2]

    def describe(self) -> dict:
        """JSON-friendly identity of the compiled instance (result rows)."""
        return {
            "backend": self.backend,
            "rule": self.rule.name,
            "vectorized": self.rule.vectorized,
        }

    # ------------------------------------------------------------------
    # batch evaluation
    # ------------------------------------------------------------------
    def normalize_rows(self, ids_matrix: Iterable) -> list[tuple[int, ...]]:
        """Coerce an assignment matrix into validated rows of id tuples.

        Accepts any iterable of per-assignment rows — tuples, lists,
        :class:`~repro.model.identifiers.IdentifierAssignment` objects, or a
        2-D numpy array — and checks each row covers exactly ``n`` positions
        with pairwise-distinct identifiers.
        """
        rows = []
        for row in ids_matrix:
            identifiers = row.identifiers() if hasattr(row, "identifiers") else row
            values = tuple(int(identifier) for identifier in identifiers)
            if len(values) != self.n:
                raise TopologyError(
                    f"assignment row covers {len(values)} positions "
                    f"but graph has {self.n}"
                )
            if len(set(values)) != self.n:
                raise IdentifierError("identifiers must be pairwise distinct")
            if (
                self.backend == "numpy"
                and values
                and max(values) > NUMPY_MAX_IDENTIFIER
            ):
                raise IdentifierError(
                    f"identifier {max(values)} exceeds the numpy backend's "
                    f"int64 range; use REPRO_KERNEL=python (or "
                    f"backend='python') for identifiers above 2**63 - 1"
                )
            rows.append(values)
        return rows

    def batch_radii(
        self, ids_matrix: Iterable, pre_validated: bool = False
    ) -> list[tuple[int, ...]]:
        """Output radii for a whole matrix of assignments (rows = assignments).

        ``pre_validated=True`` skips :meth:`normalize_rows` for trusted
        internal callers whose rows are valid by construction (canonical-leaf
        enumeration, draws that already passed
        :class:`~repro.model.identifiers.IdentifierAssignment` validation) —
        the per-row check is measurable inside those hot loops.  Rows must
        then already be sequences of ``n`` distinct ints.
        """
        rows = list(ids_matrix) if pre_validated else self.normalize_rows(ids_matrix)
        if not rows:
            return []
        self.stats.batches += 1
        self.stats.rows += len(rows)
        if _obs_enabled():
            _metrics.add("kernel.batches")
            _metrics.add("kernel.rows", len(rows))
            with _obs_span(
                "kernel.simulate_batch", rows=len(rows), backend=self.backend
            ):
                return self.rule.batch_radii(rows)
        return self.rule.batch_radii(rows)

    def batch_traces(self, ids_matrix: Iterable) -> list[ExecutionTrace]:
        """Full :class:`ExecutionTrace` objects for a matrix of assignments.

        The trace-parity surface: the property suite asserts these are
        bit-identical to :meth:`FrontierRunner.run` for every registered
        algorithm under both backends.
        """
        rows = self.normalize_rows(ids_matrix)
        if not rows:
            return []
        self.stats.batches += 1
        self.stats.rows += len(rows)
        if _obs_enabled():
            _metrics.add("kernel.batches")
            _metrics.add("kernel.rows", len(rows))
            with _obs_span(
                "kernel.simulate_batch", rows=len(rows), backend=self.backend
            ):
                radii_rows, output_rows = self.rule.batch_radii_outputs(rows)
        else:
            radii_rows, output_rows = self.rule.batch_radii_outputs(rows)
        traces = []
        for ids, radii, outputs in zip(rows, radii_rows, output_rows):
            records = {
                position: NodeRecord(
                    position=position,
                    identifier=ids[position],
                    radius=radii[position],
                    output=outputs[position],
                )
                for position in range(self.n)
            }
            traces.append(ExecutionTrace(records))
        return traces


def compile_instance(
    graph: Graph,
    algorithm: "BallAlgorithm",
    backend: Optional[str] = None,
    max_table_entries: int = DEFAULT_MAX_TABLE_ENTRIES,
    validate: bool = True,
) -> CompiledInstance:
    """Compile one ``(graph, algorithm)`` pair for batch evaluation."""
    return CompiledInstance(
        graph,
        algorithm,
        backend=backend,
        max_table_entries=max_table_entries,
        validate=validate,
    )


@dataclass
class BatchRequest:
    """One block of a multi-instance batch: rows for one compiled instance.

    ``pre_validated`` has the same meaning as in
    :meth:`CompiledInstance.batch_radii`: set it for rows that are valid by
    construction (permutation draws, canonical-leaf enumeration).
    """

    instance: CompiledInstance
    rows: Sequence
    pre_validated: bool = False


def simulate_many(requests: Sequence[BatchRequest]) -> list[list[tuple[int, ...]]]:
    """Evaluate many ``(instance, rows)`` blocks as one ragged multi-instance batch.

    The cross-instance counterpart of :func:`simulate_batch`: requests may
    target different ``(graph, algorithm)`` pairs (different row widths —
    the batch is *ragged*, never padded), and blocks aimed at the same
    compiled instance are merged so the instance evaluates one row stream
    instead of one small batch per caller.  Each merged stream runs in
    chunks of :data:`DEFAULT_BATCH_ROWS`; results come back per request, in
    request order, bit-identical to calling
    :meth:`CompiledInstance.batch_radii` per block.

    This is how the distribution campaigns submit a whole grid of sampled
    cells through one kernel entry point (see
    :func:`repro.engine.campaign.dist_cell_rows_batched`).
    """
    # Normalise per request first so validation errors point at the caller's
    # block, then merge trusted rows per instance.
    blocks: list[tuple[CompiledInstance, list[tuple[int, ...]]]] = []
    for request in requests:
        rows = (
            list(request.rows)
            if request.pre_validated
            else request.instance.normalize_rows(request.rows)
        )
        blocks.append((request.instance, rows))
    merged: dict[int, tuple[CompiledInstance, list]] = {}
    spans: list[tuple[int, int, int]] = []  # (instance key, start, stop)
    for instance, rows in blocks:
        key = id(instance)
        if key not in merged:
            merged[key] = (instance, [])
        stream = merged[key][1]
        start = len(stream)
        stream.extend(rows)
        spans.append((key, start, len(stream)))
    results: dict[int, list[tuple[int, ...]]] = {}
    for key, (instance, stream) in merged.items():
        radii: list[tuple[int, ...]] = []
        for offset in range(0, len(stream), DEFAULT_BATCH_ROWS):
            radii.extend(
                instance.batch_radii(
                    stream[offset : offset + DEFAULT_BATCH_ROWS], pre_validated=True
                )
            )
        results[key] = radii
    return [results[key][start:stop] for key, start, stop in spans]


def simulate_batch(
    instance: CompiledInstance, ids_matrix: Sequence
) -> list[tuple[int, ...]]:
    """Evaluate a matrix of assignments: rows = assignments, columns = positions.

    Returns one tuple of per-position output radii per input row, in input
    order, bit-identical to running each row through
    :meth:`FrontierRunner.run <repro.engine.frontier.FrontierRunner.run>`.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> instance = compile_instance(cycle_graph(5), LargestIdAlgorithm())
    >>> simulate_batch(instance, [(0, 1, 2, 3, 4), (4, 3, 2, 1, 0)])
    [(1, 1, 1, 1, 2), (2, 1, 1, 1, 1)]
    """
    return instance.batch_radii(ids_matrix)
