"""Compiled instances: one ``(graph, algorithm)`` pair as flat arrays.

Every aggregate measure in the paper — the classic worst case over
identifier assignments, Feuilloley's average measure, the full measure
distributions — evaluates *one* fixed ``(graph, algorithm)`` pair under
*many* assignments.  A :class:`CompiledInstance` hoists everything that
does not depend on the assignment out of that loop, once per pair:

* the CSR adjacency of the graph (``indptr`` / ``indices`` / ``ports``);
* per-centre frontier prefixes in BFS discovery order (reusing the engine's
  :class:`~repro.engine.frontier._CenterPlan` objects, which are cached on
  the graph and shared with every :class:`~repro.engine.frontier.FrontierRunner`);
* each centre's saturation radius and radius cap; and
* a precompiled :class:`~repro.kernel.rules.KernelRule` — vectorised when
  the algorithm offers one
  (:meth:`~repro.core.algorithm.BallAlgorithm.compile_kernel_rule`),
  otherwise the decide-backed :class:`~repro.kernel.rules.RunnerTableRule`
  fallback behind the same interface.

:func:`simulate_batch` then evaluates a whole **matrix** of assignments per
call — rows are assignments, columns are positions — and returns the matrix
of per-node output radii.  The numpy fast path and the pure-stdlib fallback
are chosen at import time (see :mod:`repro.kernel.backend`) and can be
overridden per instance; both are bit-identical to
:meth:`FrontierRunner.run <repro.engine.frontier.FrontierRunner.run>`,
which stays as the single-assignment reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.engine.frontier import _CenterPlan, center_plan, engine_structure
from repro.errors import ConfigurationError, IdentifierError, TopologyError
from repro.kernel.backend import resolve_backend
from repro.kernel.rules import KernelRule, MaxScanRule, RunnerTableRule
from repro.utils.validation import require_positive_int
from repro.model.graph import Graph
from repro.model.trace import ExecutionTrace, NodeRecord
from repro.obs import metrics as _metrics
from repro.obs.spans import obs_enabled as _obs_enabled, span as _obs_span

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.algorithm import BallAlgorithm

#: Default bound on the fallback rule's decision table, matching the
#: session caches of the adversaries and the API layer.
DEFAULT_MAX_TABLE_ENTRIES = 1 << 18

#: Largest identifier the numpy backend can gather (int64 arrays).  The
#: stdlib backend has no such limit; oversized identifiers on the numpy
#: path are rejected with a clear error instead of a raw OverflowError.
NUMPY_MAX_IDENTIFIER = 2**63 - 1

#: Default number of assignment rows per kernel call when a consumer
#: streams an unbounded workload (sampling, canonical-leaf cohorts).
#: Large enough to amortise the per-batch dispatch, small enough to keep
#: the working set (rows × n integers) in cache at realistic sizes.
DEFAULT_BATCH_ROWS = 256


@dataclass
class KernelStats:
    """Usage counters of one compiled instance."""

    batches: int = 0
    rows: int = 0

    def as_dict(self) -> dict:
        """JSON-friendly form (result rows, benchmark artifacts)."""
        return {"batches": self.batches, "rows": self.rows}


@dataclass
class PlanStats:
    """Plan-residency counters of one compiled instance.

    ``built`` counts every :class:`~repro.engine.frontier._CenterPlan`
    constructed over the instance's lifetime (chunked instances rebuild
    plans per evaluation sweep); ``resident`` / ``peak_resident`` track how
    many the instance holds alive at once — the quantity ``plan_chunk``
    bounds, and the regression tests assert never exceeds it.
    """

    built: int = 0
    resident: int = 0
    peak_resident: int = 0

    def acquire(self) -> None:
        self.built += 1
        self.resident += 1
        if self.resident > self.peak_resident:
            self.peak_resident = self.resident

    def release_all(self) -> None:
        self.resident = 0

    def as_dict(self) -> dict:
        """JSON-friendly form (result rows, benchmark artifacts)."""
        return {
            "built": self.built,
            "resident": self.resident,
            "peak_resident": self.peak_resident,
        }


class CompiledInstance:
    """The assignment-independent arrays of one ``(graph, algorithm)`` pair.

    Parameters
    ----------
    graph, algorithm:
        The fixed instance.  Connectivity and ``algorithm.supports_graph``
        are checked once at construction (disable with ``validate=False``
        when the caller already did).
    backend:
        ``"numpy"`` or ``"python"``; ``None`` uses the process default
        selected at import time (:func:`repro.kernel.backend.active_backend`).
    max_table_entries:
        Bound on the fallback rule's decision table.
    plan_chunk:
        ``None`` (the default) compiles eagerly: every centre's frontier
        plan stays resident for the instance's lifetime — O(n · ball)
        memory, fastest for repeated batches.  A positive integer selects
        **chunked plan mode**: at most ``plan_chunk`` plans are ever
        resident at once (compile memory O(chunk · ball)); evaluation
        sweeps :meth:`iter_plan_chunks` centre-major per batch.  Chunked
        mode requires a kernel rule with ``supports_plan_chunk`` (the
        largest-ID :class:`~repro.kernel.rules.MaxScanRule` qualifies);
        plan-hungry rules are rejected with a
        :class:`~repro.errors.ConfigurationError`.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: "BallAlgorithm",
        backend: Optional[str] = None,
        max_table_entries: int = DEFAULT_MAX_TABLE_ENTRIES,
        validate: bool = True,
        plan_chunk: Optional[int] = None,
    ) -> None:
        if validate:
            if not graph.is_connected():
                raise TopologyError("the LOCAL simulators require a connected graph")
            if not algorithm.supports_graph(graph):
                raise TopologyError(
                    f"algorithm {algorithm.name!r} does not support graph {graph.name!r}"
                )
        if plan_chunk is not None:
            require_positive_int(plan_chunk, "plan_chunk")
        self.graph = graph
        self.algorithm = algorithm
        self.backend = resolve_backend(backend)
        self.max_table_entries = max_table_entries
        self.n = graph.n
        self.plan_chunk = plan_chunk
        self._csr: Optional[tuple[tuple[int, ...], ...]] = None
        self._structure: Optional[tuple] = None
        self.stats = KernelStats()
        self.plan_stats = PlanStats()
        if plan_chunk is None:
            # Frontier prefixes, straight from the shared _CenterPlan objects:
            # discovery[v] lists the ball members of centre v in BFS order,
            # distances[v][i] is the layer (= radius of first visibility) of
            # discovery[v][i], member_counts[v][r] the prefix length of the
            # radius-r ball.
            plans = [center_plan(graph, v) for v in graph.positions()]
            self._discovery = tuple(plan.discovery for plan in plans)
            self._distances = tuple(plan.distances for plan in plans)
            self._member_counts = tuple(tuple(plan.member_counts) for plan in plans)
            self.saturation = tuple(plan.saturation_radius() for plan in plans)
            self.plan_stats.built = self.n
            self.plan_stats.resident = self.n
            self.plan_stats.peak_resident = self.n
            self._plan_entries = sum(
                2 * len(plan.discovery) + len(plan.member_counts) for plan in plans
            )
            self._peak_chunk_entries = self._plan_entries
        else:
            # Chunked mode: no plan survives construction.  One sweep
            # collects the per-centre scalars every consumer needs up front
            # (saturation radii, size accounting); evaluation rebuilds plans
            # chunk by chunk via iter_plan_chunks.
            self._discovery = None
            self._distances = None
            self._member_counts = None
            saturation: list[int] = []
            entries = 0
            peak_chunk_entries = 0
            for _, plans in self.iter_plan_chunks():
                chunk_entries = sum(
                    2 * len(plan.discovery) + len(plan.member_counts) for plan in plans
                )
                entries += chunk_entries
                peak_chunk_entries = max(peak_chunk_entries, chunk_entries)
                saturation.extend(plan.saturation_radius() for plan in plans)
            self.saturation = tuple(saturation)
            self._plan_entries = entries
            self._peak_chunk_entries = peak_chunk_entries
        self.caps = tuple(radius + 1 for radius in self.saturation)
        # The vectorised rule (or None) is compiled eagerly — it is cheap
        # and callers branch on `vectorized` before ever running a batch.
        # The decide-backed fallback carries a full engine session, so it
        # is only built when a batch actually runs on this instance.
        self._vector_rule: Optional[KernelRule] = algorithm.compile_kernel_rule(self)
        self._fallback_rule: Optional[KernelRule] = None
        if plan_chunk is not None:
            rule = self._vector_rule
            if rule is None or not getattr(rule, "supports_plan_chunk", False):
                offender = rule.name if rule is not None else "the decide-backed fallback"
                raise ConfigurationError(
                    f"plan_chunk requires a chunk-capable kernel rule, but "
                    f"algorithm {algorithm.name!r} compiles {offender}, which "
                    f"needs every centre plan resident; compile without "
                    f"plan_chunk instead"
                )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def rule(self) -> KernelRule:
        """The instance's batch rule (fallback materialised on first use)."""
        if self._vector_rule is not None:
            return self._vector_rule
        if self._fallback_rule is None:
            self._fallback_rule = RunnerTableRule(self)
        return self._fallback_rule

    @property
    def vectorized(self) -> bool:
        """Whether the instance evaluates batches with array expressions."""
        return self._vector_rule is not None and self._vector_rule.vectorized

    def _resident_plans(self, table, label: str):
        if table is None:
            raise ConfigurationError(
                f"this instance was compiled with plan_chunk={self.plan_chunk}; "
                f"{label} is never fully resident — walk iter_plan_chunks() "
                f"instead"
            )
        return table

    @property
    def discovery(self) -> tuple[tuple[int, ...], ...]:
        """Per-centre ball members in BFS discovery order (eager mode only)."""
        return self._resident_plans(self._discovery, "the discovery table")

    @property
    def distances(self) -> tuple[tuple[int, ...], ...]:
        """Per-centre discovery layers (eager mode only)."""
        return self._resident_plans(self._distances, "the distance table")

    @property
    def member_counts(self) -> tuple[tuple[int, ...], ...]:
        """Per-centre radius-r prefix lengths (eager mode only)."""
        return self._resident_plans(self._member_counts, "the member-count table")

    def iter_plan_chunks(self):
        """Yield ``(centers, plans)`` with ≤ ``plan_chunk`` plans resident.

        The chunked-mode evaluation surface: each yielded ``plans`` list
        holds fresh :class:`~repro.engine.frontier._CenterPlan` objects for
        ``centers`` (a :class:`range`), built directly against the graph's
        shared adjacency — deliberately *not* through
        :func:`~repro.engine.frontier.center_plan`, whose per-graph cache
        would keep every plan alive and defeat the memory bound.
        :attr:`plan_stats` tracks residency; the regression tests assert
        ``peak_resident <= plan_chunk``.
        """
        if self.plan_chunk is None:
            raise ConfigurationError(
                "iter_plan_chunks requires chunked plan mode; this instance "
                "was compiled eagerly (plan_chunk=None) — read .discovery / "
                ".distances directly"
            )
        if self._structure is None:
            adjacency, _, degrees = engine_structure(self.graph)
            self._structure = (adjacency, degrees)
        adjacency, degrees = self._structure
        for start in range(0, self.n, self.plan_chunk):
            stop = min(self.n, start + self.plan_chunk)
            plans = []
            for center in range(start, stop):
                plans.append(_CenterPlan(center, adjacency, degrees))
                self.plan_stats.acquire()
            yield range(start, stop), plans
            plans.clear()
            self.plan_stats.release_all()

    def _csr_arrays(self) -> tuple[tuple[int, ...], ...]:
        """CSR adjacency (built on first access): neighbours of position
        ``v`` are ``indices[indptr[v]:indptr[v + 1]]``, with ``ports[k]``
        the port of the edge on the ``v`` side — the flat-array form of the
        graph for rules (and external tooling) that want to gather against
        adjacency rather than frontier prefixes."""
        if self._csr is None:
            adjacency, _, _ = engine_structure(self.graph)
            indptr = [0]
            indices: list[int] = []
            ports: list[int] = []
            for triples in adjacency:
                for u, port_vu, _ in triples:
                    indices.append(u)
                    ports.append(port_vu)
                indptr.append(len(indices))
            self._csr = (tuple(indptr), tuple(indices), tuple(ports))
        return self._csr

    @property
    def indptr(self) -> tuple[int, ...]:
        """CSR row pointers (see :meth:`_csr_arrays`)."""
        return self._csr_arrays()[0]

    @property
    def indices(self) -> tuple[int, ...]:
        """CSR neighbour stream (see :meth:`_csr_arrays`)."""
        return self._csr_arrays()[1]

    @property
    def ports(self) -> tuple[int, ...]:
        """CSR port stream (see :meth:`_csr_arrays`)."""
        return self._csr_arrays()[2]

    def describe(self) -> dict:
        """JSON-friendly identity of the compiled instance (result rows).

        ``plan_entries`` counts every integer across all centre plans
        (discovery + distance + member-count streams); ``plan_bytes`` is the
        estimated *resident* plan footprint at 8 bytes per entry — the full
        table in eager mode, the largest single chunk in chunked mode.
        """
        return {
            "backend": self.backend,
            "rule": self.rule.name,
            "vectorized": self.rule.vectorized,
            "plan_mode": "chunked" if self.plan_chunk is not None else "eager",
            "plan_chunk": self.plan_chunk,
            "plan_entries": self._plan_entries,
            "plan_bytes": self._peak_chunk_entries * 8,
            "peak_resident_plans": self.plan_stats.peak_resident,
        }

    # ------------------------------------------------------------------
    # batch evaluation
    # ------------------------------------------------------------------
    def normalize_rows(self, ids_matrix: Iterable) -> list[tuple[int, ...]]:
        """Coerce an assignment matrix into validated rows of id tuples.

        Accepts any iterable of per-assignment rows — tuples, lists,
        :class:`~repro.model.identifiers.IdentifierAssignment` objects, or a
        2-D numpy array — and checks each row covers exactly ``n`` positions
        with pairwise-distinct identifiers.
        """
        rows = []
        for row in ids_matrix:
            identifiers = row.identifiers() if hasattr(row, "identifiers") else row
            values = tuple(int(identifier) for identifier in identifiers)
            if len(values) != self.n:
                raise TopologyError(
                    f"assignment row covers {len(values)} positions "
                    f"but graph has {self.n}"
                )
            if len(set(values)) != self.n:
                raise IdentifierError("identifiers must be pairwise distinct")
            if (
                self.backend == "numpy"
                and values
                and max(values) > NUMPY_MAX_IDENTIFIER
            ):
                raise IdentifierError(
                    f"identifier {max(values)} exceeds the numpy backend's "
                    f"int64 range; use REPRO_KERNEL=python (or "
                    f"backend='python') for identifiers above 2**63 - 1"
                )
            rows.append(values)
        return rows

    def batch_radii(
        self, ids_matrix: Iterable, pre_validated: bool = False
    ) -> list[tuple[int, ...]]:
        """Output radii for a whole matrix of assignments (rows = assignments).

        ``pre_validated=True`` skips :meth:`normalize_rows` for trusted
        internal callers whose rows are valid by construction (canonical-leaf
        enumeration, draws that already passed
        :class:`~repro.model.identifiers.IdentifierAssignment` validation) —
        the per-row check is measurable inside those hot loops.  Rows must
        then already be sequences of ``n`` distinct ints.
        """
        rows = list(ids_matrix) if pre_validated else self.normalize_rows(ids_matrix)
        if not rows:
            return []
        self.stats.batches += 1
        self.stats.rows += len(rows)
        if _obs_enabled():
            _metrics.add("kernel.batches")
            _metrics.add("kernel.rows", len(rows))
            with _obs_span(
                "kernel.simulate_batch", rows=len(rows), backend=self.backend
            ):
                return self.rule.batch_radii(rows)
        return self.rule.batch_radii(rows)

    def batch_traces(self, ids_matrix: Iterable) -> list[ExecutionTrace]:
        """Full :class:`ExecutionTrace` objects for a matrix of assignments.

        The trace-parity surface: the property suite asserts these are
        bit-identical to :meth:`FrontierRunner.run` for every registered
        algorithm under both backends.
        """
        rows = self.normalize_rows(ids_matrix)
        if not rows:
            return []
        self.stats.batches += 1
        self.stats.rows += len(rows)
        if _obs_enabled():
            _metrics.add("kernel.batches")
            _metrics.add("kernel.rows", len(rows))
            with _obs_span(
                "kernel.simulate_batch", rows=len(rows), backend=self.backend
            ):
                radii_rows, output_rows = self.rule.batch_radii_outputs(rows)
        else:
            radii_rows, output_rows = self.rule.batch_radii_outputs(rows)
        traces = []
        for ids, radii, outputs in zip(rows, radii_rows, output_rows):
            records = {
                position: NodeRecord(
                    position=position,
                    identifier=ids[position],
                    radius=radii[position],
                    output=outputs[position],
                )
                for position in range(self.n)
            }
            traces.append(ExecutionTrace(records))
        return traces


def compile_instance(
    graph: Graph,
    algorithm: "BallAlgorithm",
    backend: Optional[str] = None,
    max_table_entries: int = DEFAULT_MAX_TABLE_ENTRIES,
    validate: bool = True,
    plan_chunk: Optional[int] = None,
) -> CompiledInstance:
    """Compile one ``(graph, algorithm)`` pair for batch evaluation."""
    return CompiledInstance(
        graph,
        algorithm,
        backend=backend,
        max_table_entries=max_table_entries,
        validate=validate,
        plan_chunk=plan_chunk,
    )


@dataclass
class BatchRequest:
    """One block of a multi-instance batch: rows for one compiled instance.

    ``pre_validated`` has the same meaning as in
    :meth:`CompiledInstance.batch_radii`: set it for rows that are valid by
    construction (permutation draws, canonical-leaf enumeration).
    """

    instance: CompiledInstance
    rows: Sequence
    pre_validated: bool = False


def _padded_groups(
    merged: dict[int, tuple[CompiledInstance, list]]
) -> list[list[int]]:
    """Keys of merged instances that can share one padded evaluation.

    Eligibility is strict: numpy backend, eager (non-chunked) plans, the
    exact :class:`~repro.kernel.rules.MaxScanRule`, and identical
    ``(n, stream length)`` shape — and a group only forms with at least two
    members, since padding a single instance is pure overhead.  Streams
    longer than one :data:`DEFAULT_BATCH_ROWS` chunk stay sequential too:
    stacking pays off by amortising per-call dispatch overhead across many
    small same-shape cells (the campaign-grid workload), while a single
    long stream already keeps each array call busy.  Checking
    ``_vector_rule`` directly (never the ``rule`` property) avoids
    materialising the decide-backed fallback just to inspect it.
    """
    shapes: dict[tuple[int, int], list[int]] = {}
    for key, (instance, stream) in merged.items():
        if (
            stream
            and len(stream) <= DEFAULT_BATCH_ROWS
            and instance.backend == "numpy"
            and instance.plan_chunk is None
            and type(instance._vector_rule) is MaxScanRule
        ):
            shapes.setdefault((instance.n, len(stream)), []).append(key)
    return [keys for keys in shapes.values() if len(keys) >= 2]


def simulate_many(
    requests: Sequence[BatchRequest], pad_same_shape: bool = True
) -> list[list[tuple[int, ...]]]:
    """Evaluate many ``(instance, rows)`` blocks as one ragged multi-instance batch.

    The cross-instance counterpart of :func:`simulate_batch`: requests may
    target different ``(graph, algorithm)`` pairs (different row widths —
    the batch is ragged), and blocks aimed at the same compiled instance are
    merged so the instance evaluates one row stream instead of one small
    batch per caller.  Each merged stream runs in chunks of
    :data:`DEFAULT_BATCH_ROWS`; results come back per request, in request
    order, bit-identical to calling
    :meth:`CompiledInstance.batch_radii` per block.

    With ``pad_same_shape`` (the default), merged instances that share a
    ``(n, stream length)`` shape on the numpy backend under
    :class:`~repro.kernel.rules.MaxScanRule` are *stacked and padded* into
    one array evaluation per row chunk instead of running sequentially
    (see :meth:`~repro.kernel.rules.MaxScanRule.padded_batch_radii` for why
    padding is exact).  The property wall asserts the fast path is
    bit-identical to the sequential one; pass ``pad_same_shape=False`` to
    force sequential evaluation (the benchmarks do, to measure the gap).

    This is how the distribution campaigns submit a whole grid of sampled
    cells through one kernel entry point (see
    :func:`repro.engine.campaign.dist_cell_rows_batched`).
    """
    # Normalise per request first so validation errors point at the caller's
    # block, then merge trusted rows per instance.
    blocks: list[tuple[CompiledInstance, list[tuple[int, ...]]]] = []
    for request in requests:
        rows = (
            list(request.rows)
            if request.pre_validated
            else request.instance.normalize_rows(request.rows)
        )
        blocks.append((request.instance, rows))
    merged: dict[int, tuple[CompiledInstance, list]] = {}
    spans: list[tuple[int, int, int]] = []  # (instance key, start, stop)
    for instance, rows in blocks:
        key = id(instance)
        if key not in merged:
            merged[key] = (instance, [])
        stream = merged[key][1]
        start = len(stream)
        stream.extend(rows)
        spans.append((key, start, len(stream)))
    results: dict[int, list[tuple[int, ...]]] = {}
    if pad_same_shape:
        for keys in _padded_groups(merged):
            instances = [merged[key][0] for key in keys]
            streams = [merged[key][1] for key in keys]
            rules = [instance._vector_rule for instance in instances]
            length = len(streams[0])
            group_radii: list[list[tuple[int, ...]]] = [[] for _ in keys]
            for offset in range(0, length, DEFAULT_BATCH_ROWS):
                chunks = [stream[offset : offset + DEFAULT_BATCH_ROWS] for stream in streams]
                rows_here = len(chunks[0])
                for instance in instances:
                    instance.stats.batches += 1
                    instance.stats.rows += rows_here
                if _obs_enabled():
                    _metrics.add("kernel.padded_batches")
                    _metrics.add("kernel.rows", rows_here * len(keys))
                    with _obs_span(
                        "kernel.padded_batch",
                        instances=len(keys),
                        rows=rows_here,
                        n=instances[0].n,
                    ):
                        padded = MaxScanRule.padded_batch_radii(rules, chunks)
                else:
                    padded = MaxScanRule.padded_batch_radii(rules, chunks)
                for radii, part in zip(group_radii, padded):
                    radii.extend(part)
            for key, radii in zip(keys, group_radii):
                results[key] = radii
    for key, (instance, stream) in merged.items():
        if key in results:
            continue
        radii: list[tuple[int, ...]] = []
        for offset in range(0, len(stream), DEFAULT_BATCH_ROWS):
            radii.extend(
                instance.batch_radii(
                    stream[offset : offset + DEFAULT_BATCH_ROWS], pre_validated=True
                )
            )
        results[key] = radii
    return [results[key][start:stop] for key, start, stop in spans]


def simulate_batch(
    instance: CompiledInstance, ids_matrix: Sequence
) -> list[tuple[int, ...]]:
    """Evaluate a matrix of assignments: rows = assignments, columns = positions.

    Returns one tuple of per-position output radii per input row, in input
    order, bit-identical to running each row through
    :meth:`FrontierRunner.run <repro.engine.frontier.FrontierRunner.run>`.

    >>> from repro.algorithms.largest_id import LargestIdAlgorithm
    >>> from repro.topology.cycle import cycle_graph
    >>> instance = compile_instance(cycle_graph(5), LargestIdAlgorithm())
    >>> simulate_batch(instance, [(0, 1, 2, 3, 4), (4, 3, 2, 1, 0)])
    [(1, 1, 1, 1, 2), (2, 1, 1, 1, 1)]
    """
    return instance.batch_radii(ids_matrix)
