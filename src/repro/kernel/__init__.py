"""The batch kernel: compiled instances and array-backed batch simulation.

Layer between the engine (single-assignment frontier sessions) and the
measure layers (search, dist, api): a
:class:`~repro.kernel.compile.CompiledInstance` flattens one
``(graph, algorithm)`` pair into integer arrays computed once per pair, and
:func:`~repro.kernel.compile.simulate_batch` evaluates whole matrices of
identifier assignments per call — thousands of rows over flat arrays
instead of one Python-object simulation per assignment.

Backends: a numpy fast path and a pure-stdlib fallback, selected once per
process (on first kernel use) and overridable via ``REPRO_KERNEL={numpy,python}``
(:mod:`repro.kernel.backend`).  Consumers: distribution sampling streams
sample chunks through the kernel, the exact enumerations evaluate
canonical-leaf cohorts as batches, the swap-based searches score candidate
moves in batches, and :class:`repro.api.session.Session` caches compiled
instances next to its engine runners.
"""

from repro.kernel.backend import (
    KERNEL_BACKENDS,
    KERNEL_ENV,
    active_backend,
    numpy_available,
    resolve_backend,
)
from repro.kernel.compile import (
    DEFAULT_BATCH_ROWS,
    BatchRequest,
    CompiledInstance,
    KernelStats,
    compile_instance,
    simulate_batch,
    simulate_many,
)
from repro.kernel.compile import PlanStats
from repro.kernel.cone import GreedyConeRule, RingMISConeRule
from repro.kernel.cvring import ColeVishkinRingRule
from repro.kernel.rules import KernelRule, MaxScanRule, RunnerTableRule
from repro.kernel.shard import (
    SCALE_ALGORITHMS,
    MaxScanScaleRule,
    ScaleRowStats,
    ScaleRule,
    ShardedKernelExecutor,
    run_scale_probe,
    scale_rule_for,
)

__all__ = [
    "BatchRequest",
    "ColeVishkinRingRule",
    "CompiledInstance",
    "DEFAULT_BATCH_ROWS",
    "GreedyConeRule",
    "KERNEL_BACKENDS",
    "KERNEL_ENV",
    "KernelRule",
    "KernelStats",
    "MaxScanRule",
    "MaxScanScaleRule",
    "PlanStats",
    "RingMISConeRule",
    "RunnerTableRule",
    "SCALE_ALGORITHMS",
    "ScaleRowStats",
    "ScaleRule",
    "ShardedKernelExecutor",
    "active_backend",
    "compile_instance",
    "numpy_available",
    "resolve_backend",
    "run_scale_probe",
    "scale_rule_for",
    "simulate_batch",
    "simulate_many",
]
