"""Experiment harness.

The paper is a brief announcement and contains no tables or figures; its
"evaluation" is a set of quantitative claims.  This package defines one
experiment per claim (see ``DESIGN.md`` for the index E1-E9); each module
exposes a ``run(...)`` function returning an
:class:`~repro.experiments.harness.ExperimentResult` whose table the
benchmarks print, and ``EXPERIMENTS.md`` records paper-vs-measured for every
experiment.
"""

from repro.experiments.harness import ExperimentResult, run_all_experiments
from repro.experiments import (
    characterization,
    coloring,
    distributions,
    dynamic,
    general_graphs,
    largest_id,
    lower_bound,
    parallel,
    random_ids,
    recurrence,
    regularity,
    search_strategies,
    simulators,
)

__all__ = [
    "ExperimentResult",
    "characterization",
    "coloring",
    "distributions",
    "dynamic",
    "general_graphs",
    "largest_id",
    "lower_bound",
    "parallel",
    "random_ids",
    "recurrence",
    "regularity",
    "run_all_experiments",
    "search_strategies",
    "simulators",
]
