"""Experiment E11 — the average measure beyond cycles (further work).

The paper's conclusion notes that "we only consider the cycle topology, and
results for more general graphs are missing".  This experiment provides the
empirical side of that question for the largest-ID problem: on trees, grids,
tori and random graphs, how do the classic and the average measures compare?

The qualitative picture from the cycle carries over wherever the diameter is
large (paths, grids, random trees): the maximum-identifier vertex still pays
its eccentricity while typical vertices meet a larger identifier after a few
hops, so the gap between the measures tracks the graph's diameter.  On
expander-like graphs (dense G(n, p)) both measures are already tiny, so
averaging has little left to gain — a useful boundary case for the paper's
characterisation question.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.certification import certify
from repro.core.measures import average_complexity, classic_complexity
from repro.engine.batch import derive_task_seed
from repro.api.session import Session
from repro.experiments.harness import ExperimentResult
from repro.model.graph import Graph
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph
from repro.topology.grid import grid_graph, torus_graph
from repro.topology.path import path_graph
from repro.topology.random_graphs import gnp_random_graph, random_tree
from repro.topology.tree import balanced_tree, spider_tree
from repro.utils.rng import SeedLike
from repro.utils.tables import Table


def _families(n: int, seed: int) -> Sequence[tuple[str, Callable[[], Graph]]]:
    side = max(3, int(round(n**0.5)))
    return (
        ("cycle", lambda: cycle_graph(n)),
        ("path", lambda: path_graph(n)),
        ("grid", lambda: grid_graph(side, side)),
        ("torus", lambda: torus_graph(side, side)),
        ("balanced-tree", lambda: balanced_tree(2, max(2, n.bit_length() - 2))),
        ("spider", lambda: spider_tree(4, max(2, n // 4))),
        ("random-tree", lambda: random_tree(n, seed=seed)),
        ("gnp-dense", lambda: gnp_random_graph(n, min(0.9, 8.0 / n), seed=seed)),
    )


def run(n: int = 144, samples: int = 4, small: bool = False, seed: SeedLike = 131) -> ExperimentResult:
    """Run E11: largest-ID measures across topology families."""
    if small:
        n = min(n, 64)
        samples = min(samples, 2)
    table = Table(
        columns=(
            "family",
            "nodes",
            "diameter",
            "avg_radius",
            "max_radius",
            "gap_max_over_avg",
        ),
        title=f"E11: largest-ID beyond the cycle (about {n} nodes per family)",
    )
    result = ExperimentResult(
        experiment_id="E11",
        title="general graphs",
        claim="the average/classic separation persists on high-diameter topologies and "
        "narrows on dense graphs",
        table=table,
    )
    algorithm = LargestIdAlgorithm()
    base_seed = int(seed) if isinstance(seed, int) else 0
    # All families and samples share one API session (per-graph runners
    # with warm decision caches).
    session = Session()
    for family, builder in _families(n, seed=base_seed):
        graph = builder()
        traces = []
        for sample in range(samples):
            # derive_task_seed, not hash(): builtin hash() is salted per
            # interpreter, which made this experiment non-reproducible.
            ids = random_assignment(
                graph.n, seed=derive_task_seed(base_seed, family, sample)
            )
            trace = session.trace(graph, ids, algorithm)
            certify("largest-id", graph, ids, trace)
            traces.append(trace)
        average = average_complexity(traces)
        maximum = classic_complexity(traces)
        table.add_row(
            family=family,
            nodes=graph.n,
            diameter=graph.diameter(),
            avg_radius=average,
            max_radius=maximum,
            gap_max_over_avg=maximum / average if average else float("inf"),
        )
    by_family = {row["family"]: row for row in table.rows}
    result.require(
        all(
            by_family[family]["gap_max_over_avg"] > 3
            for family in ("cycle", "path", "grid", "random-tree")
        ),
        "high-diameter families keep a large average/classic gap",
    )
    result.require(
        by_family["gnp-dense"]["max_radius"] <= by_family["gnp-dense"]["diameter"],
        "on dense random graphs even the classic measure is bounded by the (small) diameter",
    )
    result.require(
        all(row["max_radius"] == row["diameter"] or row["max_radius"] <= row["diameter"]
            for row in table.rows),
        "no vertex ever needs a radius beyond the diameter",
    )
    return result
