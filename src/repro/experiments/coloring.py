"""Experiment E3 — 3-colouring the ring: Cole–Vishkin matches the lower bound.

Paper claim (Section 3): 3-colouring the ``n``-ring takes ``Theta(log* n)``
rounds under the classic measure (Cole–Vishkin from above, Linial from
below), and averaging over nodes does not help — Theorem 1 shows the
``Omega(log* n)`` lower bound also holds for the average measure.

The experiment runs Cole–Vishkin on rings of increasing size, verifies the
colourings, and records that the measured average radius (i) stays at or
above the Linial threshold ``ceil((1/2) log*(n/2))`` and (ii) stays far
below any log-like growth — i.e. both measures sit in the narrow
``Theta(log* n)`` band, unlike largest-ID where they diverge exponentially.
The greedy-by-identifier colouring is included as a contrast: its worst-case
assignment behaves linearly while its average can still be tiny.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.cole_vishkin import ColeVishkinRing, cv_rounds_needed
from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.core.certification import certify
from repro.api.session import Session
from repro.experiments.harness import ExperimentResult, default_ring_sizes
from repro.model.identifiers import identity_assignment, random_assignment
from repro.model.rounds import run_round_algorithm
from repro.theory.bounds import coloring_average_lower_bound
from repro.topology.cycle import cycle_graph
from repro.utils.math_functions import log_star
from repro.utils.rng import SeedLike
from repro.utils.tables import Table


def run(
    sizes: Sequence[int] | None = None, small: bool = False, seed: SeedLike = 11
) -> ExperimentResult:
    """Run E3 on the given ring sizes."""
    sizes = list(sizes) if sizes is not None else default_ring_sizes(small)
    table = Table(
        columns=(
            "n",
            "log_star",
            "linial_threshold",
            "cv_avg_radius",
            "cv_max_radius",
            "cv_predicted_rounds",
            "greedy_avg_random",
            "greedy_max_sorted",
        ),
        title="E3: 3-colouring the n-ring",
    )
    result = ExperimentResult(
        experiment_id="E3",
        title="3-colouring the ring",
        claim="both measures of 3-colouring sit in Theta(log* n); averaging does not beat Linial",
        table=table,
    )
    greedy = GreedyColoringByID()
    session = Session()
    for n in sizes:
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=seed)
        cv_trace = run_round_algorithm(graph, ids, ColeVishkinRing(n))
        certify("3-coloring", graph, ids, cv_trace)
        greedy_random_trace = session.trace(graph, ids, greedy)
        certify("coloring", graph, ids, greedy_random_trace)
        # The sorted-identifier contrast run is Theta(n) per node for the
        # greedy algorithm, so it is only simulated up to moderate sizes.
        greedy_max_sorted = None
        if n <= 256:
            sorted_ids = identity_assignment(n)
            greedy_sorted_trace = session.trace(graph, sorted_ids, greedy)
            certify("coloring", graph, sorted_ids, greedy_sorted_trace)
            greedy_max_sorted = greedy_sorted_trace.max_radius
        table.add_row(
            n=n,
            log_star=log_star(n),
            linial_threshold=coloring_average_lower_bound(n),
            cv_avg_radius=cv_trace.average_radius,
            cv_max_radius=cv_trace.max_radius,
            cv_predicted_rounds=cv_rounds_needed(n),
            greedy_avg_random=greedy_random_trace.average_radius,
            greedy_max_sorted=greedy_max_sorted if greedy_max_sorted is not None else "",
        )
    rows = table.rows
    result.require(
        all(row["cv_avg_radius"] >= row["linial_threshold"] for row in rows),
        "Cole–Vishkin's average radius never drops below the Linial threshold",
    )
    result.require(
        all(row["cv_max_radius"] == row["cv_predicted_rounds"] for row in rows),
        "Cole–Vishkin uses exactly log*-many bit reductions plus three clean-up rounds",
    )
    result.require(
        all(row["cv_avg_radius"] == row["cv_max_radius"] for row in rows),
        "every node of Cole–Vishkin commits at the same round (average equals max)",
    )
    largest, smallest = rows[-1], rows[0]
    result.require(
        largest["cv_max_radius"] - smallest["cv_max_radius"] <= 3,
        "the colouring radius is essentially flat over a 64x range of sizes (log* growth)",
    )
    sorted_rows = [row for row in rows if row["greedy_max_sorted"] != ""]
    result.require(
        bool(sorted_rows)
        and all(row["greedy_max_sorted"] >= row["n"] // 4 for row in sorted_rows),
        "greedy colouring's classic measure degenerates to Omega(n) on sorted identifiers",
    )
    return result
