"""Experiment E2 — the segment recurrence, OEIS A000788 and Theta(p log p).

Paper claim (Section 2): the worst-case sum of radii ``a(p)`` on a
``p``-vertex segment satisfies
``a(p) = max_{1<=k<=ceil(p/2)} {k + a(k-1) + a(p-k)}`` and "is known to be in
Theta(n ln n) (see for example the sequence A000788 of the OEIS)".

The experiment evaluates the recurrence, compares it term by term against
A000788, cross-checks tiny sizes against an exhaustive search over all
identifier orders, and verifies the ``Theta(p log p)`` growth.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.analysis import fit_growth
from repro.experiments.harness import ExperimentResult
from repro.theory.oeis import A000788_closed_form
from repro.theory.recurrence import (
    brute_force_segment_maximum,
    segment_radius_sum,
    worst_case_segment_arrangement,
    worst_case_segment_sum,
)
from repro.utils.tables import Table


def run(sizes: Sequence[int] | None = None, small: bool = False) -> ExperimentResult:
    """Run E2 for the given segment sizes."""
    if sizes is None:
        sizes = [16, 64, 256, 1024] if small else [16, 64, 256, 1024, 4096]
    sizes = list(sizes)
    table = Table(
        columns=("p", "a(p)", "A000788(p)", "a(p)/(p*log2(p))", "arrangement_sum"),
        title="E2: the segment recurrence a(p)",
    )
    result = ExperimentResult(
        experiment_id="E2",
        title="segment recurrence and A000788",
        claim="a(p) equals A000788(p) and grows as Theta(p log p)",
        table=table,
    )
    values = []
    for p in sizes:
        a_p = worst_case_segment_sum(p)
        oeis = A000788_closed_form(p)
        arrangement = worst_case_segment_arrangement(range(p))
        table.add_row(
            p=p,
            **{
                "a(p)": a_p,
                "A000788(p)": oeis,
                "a(p)/(p*log2(p))": a_p / (p * math.log2(p)),
                "arrangement_sum": segment_radius_sum(arrangement),
            },
        )
        values.append(float(a_p))
    result.require(
        all(row["a(p)"] == row["A000788(p)"] for row in table.rows),
        "the recurrence coincides with OEIS A000788 at every tested size",
    )
    result.require(
        all(row["arrangement_sum"] == row["a(p)"] for row in table.rows),
        "the explicit worst-case arrangement achieves a(p) exactly",
    )
    brute_limit = 7 if small else 8
    exhaustive_matches = all(
        brute_force_segment_maximum(p) == worst_case_segment_sum(p)
        for p in range(brute_limit + 1)
    )
    result.require(
        exhaustive_matches,
        f"exhaustive search over all orders matches a(p) for p <= {brute_limit}",
    )
    if len(sizes) >= 3:
        fit = fit_growth(sizes, values)
        result.add_note(f"a(p) growth fit: {fit.best_name}")
        result.require(fit.is_consistent_with("nlogn"), "a(p) grows like p log p")
    return result
