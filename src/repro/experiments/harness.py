"""Shared infrastructure for the experiments.

An :class:`ExperimentResult` bundles the experiment's identifier (E1-E9 as
listed in ``DESIGN.md``), a human-readable claim, the measured table and any
free-form notes (growth fits, pass/fail of shape checks).  The benchmarks
simply run an experiment and print ``str(result)``, so the same rows appear
in the terminal, in ``bench_output.txt`` and in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.errors import ExperimentError
from repro.utils.tables import Table


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    experiment_id: str
    title: str
    claim: str
    table: Table
    notes: list[str] = field(default_factory=list)

    def add_note(self, note: str) -> None:
        """Attach a free-form observation (growth fit, shape check, ...)."""
        self.notes.append(note)

    def require(self, condition: bool, description: str) -> None:
        """Record a shape check; raise if it fails.

        Experiments use this for the qualitative statements the paper makes
        ("average grows like log n", "lower bound not beaten"), so that a
        benchmark run fails loudly when the reproduction stops reproducing.
        """
        if not condition:
            raise ExperimentError(f"{self.experiment_id}: shape check failed — {description}")
        self.notes.append(f"check passed: {description}")

    def __str__(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"claim: {self.claim}",
            str(self.table),
        ]
        if self.notes:
            lines.append("notes:")
            lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def default_ring_sizes(small: bool = False) -> list[int]:
    """Ring sizes shared by the ring experiments (powers of two)."""
    if small:
        return [16, 32, 64, 128]
    return [16, 32, 64, 128, 256, 512, 1024]


def run_all_experiments(small: bool = False) -> list[ExperimentResult]:
    """Run every experiment with default parameters and return their results.

    ``small=True`` shrinks the instance sizes so the full sweep stays fast
    enough for the test suite; the benchmarks use the full sizes.
    """
    # Imported here to keep module import light and avoid import cycles.
    from repro.experiments import (
        characterization,
        coloring,
        distributions,
        dynamic,
        general_graphs,
        largest_id,
        lower_bound,
        parallel,
        random_ids,
        recurrence,
        regularity,
        search_strategies,
        simulators,
    )

    runners: Sequence[Callable[[], ExperimentResult]] = (
        lambda: largest_id.run(sizes=default_ring_sizes(small)),
        lambda: recurrence.run(small=small),
        lambda: coloring.run(sizes=default_ring_sizes(small)),
        lambda: lower_bound.run(small=small),
        lambda: regularity.run(small=small),
        lambda: random_ids.run(small=small),
        lambda: dynamic.run(small=small),
        lambda: parallel.run(small=small),
        lambda: simulators.run(small=small),
        lambda: characterization.run(small=small),
        lambda: general_graphs.run(small=small),
        lambda: search_strategies.run(small=small),
        lambda: distributions.run(small=small),
    )
    return [runner() for runner in runners]
