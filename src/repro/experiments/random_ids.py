"""Experiment E6 — expected complexity under random identifiers (further work).

The paper's conclusion proposes studying "the expectancy of the running time
on graphs where the permutation of the identifiers is taken uniformly at
random, for both the classic and the new measure".  This experiment provides
that data for the largest-ID algorithm on the cycle:

* the expected *average* radius, compared against the harmonic-number
  representative ``H_n = Theta(log n)`` (the distance to the nearest larger
  identifier has expectation ``Theta(log n)`` under a random permutation
  once boundary effects are accounted for), and
* the expected *classic* (max) radius, which stays ``Theta(n)`` because the
  maximum-identifier vertex always needs ``floor(n/2)``.

So under random identifiers the separation between the two measures
persists: averaging over nodes is what collapses the complexity, not
randomness of the identifiers.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.analysis import fit_growth
from repro.core.measures import expected_measures_over_random_ids
from repro.experiments.harness import ExperimentResult
from repro.model.identifiers import random_assignment
from repro.theory.bounds import (
    largest_id_average_upper_bound,
    largest_id_random_ids_expected_average,
    largest_id_worst_case_bound,
)
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.tables import Table


def run(
    sizes: Sequence[int] | None = None,
    samples: int = 16,
    small: bool = False,
    seed: SeedLike = 43,
) -> ExperimentResult:
    """Run E6: Monte-Carlo estimates over uniformly random identifier permutations."""
    if sizes is None:
        sizes = [16, 32, 64, 128] if small else [16, 32, 64, 128, 256, 512]
    sizes = list(sizes)
    table = Table(
        columns=(
            "n",
            "samples",
            "expected_avg",
            "se_avg",
            "harmonic_Hn",
            "worst_case_avg_bound",
            "expected_max",
            "max_bound",
        ),
        title="E6: expected measures under random identifiers (largest-ID)",
    )
    result = ExperimentResult(
        experiment_id="E6",
        title="expected complexity under random identifiers",
        claim="expectation over random identifiers keeps the average at Theta(log n) "
        "and the classic measure at Theta(n)",
        table=table,
    )
    algorithm = LargestIdAlgorithm()
    expected_averages = []
    expected_maxima = []
    for n in sizes:
        graph = cycle_graph(n)
        rngs = spawn_rngs(seed, samples)
        assignments = [random_assignment(n, seed=rng.getrandbits(64)) for rng in rngs]
        # The streaming estimator returns the legacy 2-tuple plus standard
        # errors on .average/.maximum; the table now reports the uncertainty.
        estimate = expected_measures_over_random_ids(graph, algorithm, assignments)
        expected_avg, expected_max = estimate
        table.add_row(
            n=n,
            samples=samples,
            expected_avg=expected_avg,
            se_avg=estimate.average.std_error,
            harmonic_Hn=largest_id_random_ids_expected_average(n),
            worst_case_avg_bound=largest_id_average_upper_bound(n),
            expected_max=expected_max,
            max_bound=largest_id_worst_case_bound(n),
        )
        expected_averages.append(expected_avg)
        expected_maxima.append(expected_max)
    rows = table.rows
    result.require(
        all(row["expected_avg"] <= row["worst_case_avg_bound"] + 1e-9 for row in rows),
        "the expectation over random identifiers never exceeds the worst-case average bound",
    )
    result.require(
        all(row["expected_max"] >= row["max_bound"] for row in rows),
        "the expected classic measure stays at floor(n/2) (the maximum always sees everything)",
    )
    if len(sizes) >= 3:
        avg_fit = fit_growth(sizes, expected_averages)
        max_fit = fit_growth(sizes, expected_maxima)
        result.add_note(f"expected average growth fit: {avg_fit.best_name}")
        result.add_note(f"expected max growth fit: {max_fit.best_name}")
        result.require(
            avg_fit.is_consistent_with("log", tolerance=2.0)
            or avg_fit.best_name in ("log", "loglog", "constant"),
            "expected average radius grows sub-polynomially (log-like)",
        )
        result.require(
            max_fit.best_name in ("linear", "nlogn"),
            "expected classic measure grows linearly",
        )
    return result
