"""Experiment E10 — which problems benefit from the average measure?

The paper's conclusion asks to "characterise the problems" whose average
complexity is far below their classic complexity ("first type") versus those
where the two measures essentially coincide ("second type").  This
experiment measures both quantities for every built-in problem/algorithm on
the same ring, taking the worst case over two identifier families — random
permutations and the sorted (identity) order, the natural adversarial input
for greedy-by-identifier rules:

* **largest-ID** collapses: its worst-case average stays logarithmic (the
  sorted order is actually easy on average) while its classic measure is
  linear — the paper's first type;
* **Cole–Vishkin 3-colouring** is perfectly stable: every node stops at the
  same round, so the two measures coincide — the second type, as Theorem 1
  says they must up to constants;
* the **greedy-by-identifier** problems (MIS, colouring, the MIS-based
  uniform 3-colouring) are an instructive middle ground: their *random-order*
  profiles are skewed, but the sorted order drives the *average* itself to
  ``Theta(n)``, so in the worst case over assignments they do **not**
  collapse.  Averaging alone is not a free lunch; the structure of the
  problem decides, which is exactly the characterisation question the paper
  leaves open.
"""

from __future__ import annotations

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.full_gather import BallSimulationOfRounds
from repro.algorithms.greedy_coloring import GreedyColoringByID
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.algorithms.mis import GreedyMISByID
from repro.algorithms.ring_coloring_via_mis import RingColoringViaMIS
from repro.core.certification import certify
from repro.core.measures import average_complexity, classic_complexity
from repro.api.session import Session
from repro.experiments.harness import ExperimentResult
from repro.model.identifiers import identity_assignment, random_assignment
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike, spawn_rngs
from repro.utils.tables import Table

#: Gap (classic / average) above which a problem counts as "collapsing".
COLLAPSE_THRESHOLD = 4.0


def _algorithms(n: int):
    return (
        ("largest-id", LargestIdAlgorithm()),
        ("greedy-mis", GreedyMISByID()),
        ("greedy-coloring", GreedyColoringByID()),
        ("ring-coloring-via-mis", RingColoringViaMIS()),
        ("cole-vishkin", BallSimulationOfRounds(ColeVishkinRing(n))),
    )


def run(
    n: int = 192, samples: int = 6, small: bool = False, seed: SeedLike = 101
) -> ExperimentResult:
    """Run E10 on a single ring size.

    For every algorithm the reported ``avg_radius`` and ``max_radius`` are
    worst cases over ``samples`` random identifier permutations *plus* the
    sorted order.
    """
    if small:
        n = min(n, 96)
        samples = min(samples, 3)
    table = Table(
        columns=(
            "algorithm",
            "problem",
            "n",
            "avg_radius",
            "avg_random_only",
            "max_radius",
            "gap_max_over_avg",
            "classification",
        ),
        title=f"E10: average-versus-classic gap per problem (ring of {n} nodes)",
    )
    result = ExperimentResult(
        experiment_id="E10",
        title="problem characterisation",
        claim="largest-ID collapses under averaging, Cole–Vishkin does not, and the greedy "
        "problems only look easy until an adversarial identifier order is considered",
        table=table,
    )
    graph = cycle_graph(n)
    assignments = [
        random_assignment(n, seed=rng.getrandbits(64)) for rng in spawn_rngs(seed, samples)
    ]
    sorted_ids = identity_assignment(n)
    # One API session for the whole experiment: every algorithm keeps its
    # engine runner and decision cache warm across all assignments.
    session = Session()
    for name, algorithm in _algorithms(n):
        traces = []
        for ids in assignments + [sorted_ids]:
            trace = session.trace(graph, ids, algorithm)
            certify(algorithm.problem, graph, ids, trace)
            traces.append(trace)
        average = average_complexity(traces)
        average_random_only = average_complexity(traces[:-1])
        maximum = classic_complexity(traces)
        gap = maximum / average if average else float("inf")
        table.add_row(
            algorithm=name,
            problem=algorithm.problem,
            n=n,
            avg_radius=average,
            avg_random_only=average_random_only,
            max_radius=maximum,
            gap_max_over_avg=gap,
            classification="collapses" if gap >= COLLAPSE_THRESHOLD else "stable",
        )
    by_name = {row["algorithm"]: row for row in table.rows}
    result.require(
        by_name["largest-id"]["classification"] == "collapses"
        and by_name["largest-id"]["gap_max_over_avg"] >= COLLAPSE_THRESHOLD,
        "largest-ID collapses under averaging even against the worst tested assignment",
    )
    result.require(
        by_name["cole-vishkin"]["gap_max_over_avg"] == 1.0,
        "Cole–Vishkin's average equals its classic measure (second type)",
    )
    result.require(
        all(
            by_name[name]["classification"] == "stable"
            for name in ("greedy-mis", "greedy-coloring", "ring-coloring-via-mis")
        ),
        "the greedy-by-identifier problems do not collapse once the sorted order is included",
    )
    result.require(
        all(
            by_name[name]["avg_random_only"] < by_name[name]["avg_radius"]
            for name in ("greedy-mis", "greedy-coloring")
        ),
        "for the greedy problems the sorted order, not the random ones, drives the average up",
    )
    return result
