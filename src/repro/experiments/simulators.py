"""Experiment E9 — equivalence of the ball view and the round view.

The paper introduces the ball formulation as "an equivalent way to describe
the LOCAL model".  This experiment quantifies the equivalence on concrete
algorithms, in both compilation directions:

* running the largest-ID *ball* algorithm through the flooding compiler
  (:class:`~repro.algorithms.full_gather.FullGatherRoundAlgorithm`) yields
  per-node round counts within one round of the ball radii (one extra round
  may be needed because edges between two frontier nodes are not yet known);
* running the Cole–Vishkin *round* algorithm through the replay compiler
  (:class:`~repro.algorithms.full_gather.BallSimulationOfRounds`) yields
  per-node radii equal to the original output rounds (up to the early stop
  when a small ball already covers the whole ring).
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.full_gather import BallSimulationOfRounds, FullGatherRoundAlgorithm
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.experiments.harness import ExperimentResult
from repro.model.identifiers import random_assignment
from repro.model.rounds import run_round_algorithm
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike
from repro.utils.tables import Table


def run(
    sizes: Sequence[int] | None = None, small: bool = False, seed: SeedLike = 83
) -> ExperimentResult:
    """Run E9 on the given ring sizes."""
    if sizes is None:
        sizes = [16, 32] if small else [16, 32, 64, 128]
    sizes = list(sizes)
    table = Table(
        columns=(
            "n",
            "algorithm",
            "avg_ball",
            "avg_round",
            "max_abs_radius_diff",
            "outputs_agree",
        ),
        title="E9: ball view versus round view",
    )
    result = ExperimentResult(
        experiment_id="E9",
        title="simulator equivalence",
        claim="the ball view and the round view measure the same radii (within one round)",
        table=table,
    )
    for n in sizes:
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=seed)

        largest = LargestIdAlgorithm()
        ball_trace = run_ball_algorithm(graph, ids, largest)
        round_trace = run_round_algorithm(graph, ids, FullGatherRoundAlgorithm(largest))
        certify("largest-id", graph, ids, ball_trace)
        certify("largest-id", graph, ids, round_trace)
        diff = max(
            abs(ball_trace.radii()[v] - round_trace.radii()[v]) for v in graph.positions()
        )
        table.add_row(
            n=n,
            algorithm="largest-id",
            avg_ball=ball_trace.average_radius,
            avg_round=round_trace.average_radius,
            max_abs_radius_diff=diff,
            outputs_agree=ball_trace.outputs_by_position() == round_trace.outputs_by_position(),
        )

        cole_vishkin = ColeVishkinRing(n)
        cv_round_trace = run_round_algorithm(graph, ids, cole_vishkin)
        cv_ball_trace = run_ball_algorithm(graph, ids, BallSimulationOfRounds(cole_vishkin))
        certify("3-coloring", graph, ids, cv_round_trace)
        certify("3-coloring", graph, ids, cv_ball_trace)
        cv_diff = max(
            abs(cv_round_trace.radii()[v] - cv_ball_trace.radii()[v])
            for v in graph.positions()
        )
        table.add_row(
            n=n,
            algorithm="cole-vishkin",
            avg_ball=cv_ball_trace.average_radius,
            avg_round=cv_round_trace.average_radius,
            max_abs_radius_diff=cv_diff,
            outputs_agree=cv_ball_trace.outputs_by_position()
            == cv_round_trace.outputs_by_position(),
        )
    rows = table.rows
    result.require(
        all(row["max_abs_radius_diff"] <= 1 for row in rows),
        "per-node radii of the two views differ by at most one round",
    )
    result.require(
        all(row["outputs_agree"] for row in rows),
        "both views produce identical outputs at every node",
    )
    return result
