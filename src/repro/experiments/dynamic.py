"""Experiment E7 — dynamic networks: repair cost after a change at a random node.

The paper motivates the average measure by dynamic networks: "the average
time to update the labels of the graph after a change at a random node, can
be estimated using the average measure".  In the repair model of
:mod:`repro.applications.dynamic_networks`, a node must recompute exactly
when the changed node lies in the ball it used, so the expected number of
recomputing nodes for a uniformly random change equals
``(1/n) * sum_v |B(v, r(v))|`` — on a cycle, ``2 * average_radius + 1``.

The experiment verifies that identity analytically (from the trace) and
empirically (by Monte-Carlo churn), and contrasts it with the worst-case
estimate ``2 * max_radius + 1`` that the classic measure would suggest.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.applications.dynamic_networks import (
    DynamicRepairSimulator,
    average_repair_cost,
    expected_repair_cost,
)
from repro.core.runner import run_ball_algorithm
from repro.experiments.harness import ExperimentResult
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike
from repro.utils.tables import Table


def run(
    sizes: Sequence[int] | None = None,
    churn_events: int = 24,
    small: bool = False,
    seed: SeedLike = 59,
) -> ExperimentResult:
    """Run E7 on the given ring sizes."""
    if sizes is None:
        sizes = [64, 128] if small else [64, 128, 256, 512]
    sizes = list(sizes)
    table = Table(
        columns=(
            "n",
            "avg_radius",
            "expected_repair_analytic",
            "repair_from_avg_formula",
            "repair_measured_churn",
            "worst_case_estimate",
        ),
        title="E7: repair cost after a random single-node change",
    )
    result = ExperimentResult(
        experiment_id="E7",
        title="dynamic-network repair cost",
        claim="the expected repair cost is governed by the average radius, not the worst case",
        table=table,
    )
    algorithm = LargestIdAlgorithm()
    for n in sizes:
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=seed)
        trace = run_ball_algorithm(graph, ids, algorithm)
        analytic = expected_repair_cost(trace, graph)
        formula = 2 * trace.average_radius + 1
        simulator = DynamicRepairSimulator(graph, ids, algorithm)
        reports = simulator.random_churn(churn_events, seed=seed)
        measured = average_repair_cost(reports)
        table.add_row(
            n=n,
            avg_radius=trace.average_radius,
            expected_repair_analytic=analytic,
            repair_from_avg_formula=formula,
            repair_measured_churn=measured,
            worst_case_estimate=2 * trace.max_radius + 1,
        )
    rows = table.rows
    result.require(
        all(
            abs(row["expected_repair_analytic"] - row["repair_from_avg_formula"])
            <= 1.0 / row["n"] + 1e-9
            for row in rows
        ),
        "on a cycle the analytic repair cost equals 2 * average_radius + 1 "
        "(up to the wrap-around term of the maximum's ball)",
    )
    result.require(
        all(
            row["repair_measured_churn"] <= 4 * row["expected_repair_analytic"] + 4
            for row in rows
        ),
        "measured churn repair cost stays within a small factor of the analytic estimate",
    )
    result.require(
        all(row["worst_case_estimate"] >= 3 * row["expected_repair_analytic"] for row in rows),
        "the worst-case estimate overshoots the true expected repair cost by a large factor",
    )
    return result
