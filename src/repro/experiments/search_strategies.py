"""Experiment E12 — the adversary-search portfolio on the cycle.

Both measures of the paper are worst cases over the identifier assignment,
so the quality/cost trade-off of the *outer search* is itself an
experimental question.  This experiment races the search generations on
small cycles, where the legacy exhaustive adversary still provides ground
truth:

* ``exhaustive``        — the legacy full ``n!`` enumeration (PR 1 engine);
* ``pruned-exhaustive`` — canonical enumeration only (one assignment per
  automorphism class of the cycle, ``n!/2n`` candidates);
* ``branch-and-bound``  — canonical enumeration plus admissible-bound
  pruning seeded by a hill-climbed incumbent;
* ``portfolio``         — the heuristic strategy portfolio (lower bound).

The shape checks assert what the search subsystem guarantees: all exact
searches agree with the legacy optimum, the pruned searches do factor-of-
group less enumeration work, and the heuristic portfolio never reports a
value above the certified optimum (on these sizes it in fact attains it).
"""

from __future__ import annotations

import time
from typing import Sequence

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.adversary import ExhaustiveAdversary
from repro.experiments.harness import ExperimentResult
from repro.search.adversaries import (
    BranchAndBoundAdversary,
    PortfolioAdversary,
    PrunedExhaustiveAdversary,
)
from repro.topology.cycle import cycle_graph
from repro.utils.tables import Table


def run(sizes: Sequence[int] | None = None, small: bool = False) -> ExperimentResult:
    """Run E12 for the given cycle sizes."""
    if sizes is None:
        sizes = [6] if small else [7, 8]
    sizes = list(sizes)
    table = Table(
        columns=(
            "n",
            "adversary",
            "value",
            "exact",
            "evaluations",
            "wall_ms",
            "cache_hit_rate",
        ),
        title="E12: adversary search generations on the cycle (objective: average)",
    )
    result = ExperimentResult(
        experiment_id="E12",
        title="adversary search portfolio",
        claim=(
            "symmetry-pruned exact search matches the legacy exhaustive optimum "
            "with a fraction of the evaluations; the heuristic portfolio attains it"
        ),
        table=table,
    )
    algorithm = LargestIdAlgorithm()
    adversaries = (
        ("exhaustive", lambda seed: ExhaustiveAdversary()),
        ("pruned-exhaustive", lambda seed: PrunedExhaustiveAdversary()),
        ("branch-and-bound", lambda seed: BranchAndBoundAdversary()),
        ("portfolio", lambda seed: PortfolioAdversary(seed=seed)),
    )
    exact_by_n: dict[int, float] = {}
    rows_by_key: dict[tuple[int, str], dict] = {}
    for n in sizes:
        graph = cycle_graph(n)
        for name, build in adversaries:
            adversary = build(n)
            started = time.perf_counter()
            outcome = adversary.maximise(graph, algorithm, objective="average")
            elapsed_ms = (time.perf_counter() - started) * 1e3
            cache = outcome.cache_stats
            row = {
                "n": n,
                "adversary": name,
                "value": round(outcome.value, 6),
                "exact": outcome.exact,
                "evaluations": outcome.evaluations,
                "wall_ms": round(elapsed_ms, 2),
                "cache_hit_rate": round(cache.hit_rate, 3) if cache else 0.0,
            }
            table.add_row(**row)
            rows_by_key[(n, name)] = row
            if name == "exhaustive":
                exact_by_n[n] = outcome.value
    result.require(
        all(
            rows_by_key[(n, name)]["value"] == round(exact_by_n[n], 6)
            for n in sizes
            for name in ("pruned-exhaustive", "branch-and-bound")
        ),
        "every exact search reports the legacy exhaustive optimum",
    )
    result.require(
        all(
            rows_by_key[(n, "pruned-exhaustive")]["evaluations"]
            * 4  # the cycle's automorphism group has order 2n >= 12 here
            <= rows_by_key[(n, "exhaustive")]["evaluations"]
            for n in sizes
        ),
        "canonical enumeration does at most 1/4 of the legacy evaluations",
    )
    result.require(
        all(
            rows_by_key[(n, "portfolio")]["value"] <= round(exact_by_n[n], 6)
            for n in sizes
        ),
        "the heuristic portfolio never exceeds the certified optimum",
    )
    result.require(
        all(
            rows_by_key[(n, "portfolio")]["value"] == round(exact_by_n[n], 6)
            for n in sizes
        ),
        "the heuristic portfolio attains the optimum on these sizes",
    )
    return result
