"""Experiment E8 — parallel simulation: early-stopping nodes free processors.

The paper's second motivating application: "in the context of parallel
computations that simulate distributed computations, we can take advantage
of the fact that a job is finished earlier to process another job, and then
the average running time is the relevant measure."

The experiment simulates the node-jobs of the largest-ID algorithm (job of
node ``v`` lasts ``r(v)`` time units) on ``p`` processors and compares

* the greedy list-scheduler makespan, which tracks
  ``sum_v r(v) / p + max_v r(v)`` and is therefore governed by the *average*
  radius, against
* the lock-step makespan ``ceil(n/p) * max_v r(v)`` that a simulator unaware
  of early stopping pays, governed by the *classic* measure.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.applications.parallel_sim import list_schedule, naive_makespan
from repro.api.session import Session
from repro.experiments.harness import ExperimentResult
from repro.model.identifiers import random_assignment
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike
from repro.utils.tables import Table


def run(
    sizes: Sequence[int] | None = None,
    processor_counts: Sequence[int] = (4, 16),
    small: bool = False,
    seed: SeedLike = 71,
) -> ExperimentResult:
    """Run E8 on the given ring sizes and processor-pool sizes."""
    if sizes is None:
        sizes = [128] if small else [128, 256, 512]
    sizes = list(sizes)
    table = Table(
        columns=(
            "n",
            "processors",
            "avg_radius",
            "max_radius",
            "greedy_makespan",
            "ideal_average_bound",
            "naive_makespan",
            "speedup",
        ),
        title="E8: parallel simulation with early-stopping nodes",
    )
    result = ExperimentResult(
        experiment_id="E8",
        title="parallel simulation speed-up",
        claim="the makespan with processor reuse is governed by the average, not the maximum",
        table=table,
    )
    algorithm = LargestIdAlgorithm()
    session = Session()
    for n in sizes:
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=seed)
        # Simulate once per size through the shared API session; the
        # processor sweep only re-schedules the resulting durations.
        trace = session.trace(graph, ids, algorithm)
        durations = [max(1, radius) for radius in trace.radii().values()]
        for processors in processor_counts:
            greedy = list_schedule(durations, processors)
            naive = naive_makespan(durations, processors)
            ideal = sum(durations) / processors + max(durations)
            table.add_row(
                n=n,
                processors=processors,
                avg_radius=trace.average_radius,
                max_radius=trace.max_radius,
                greedy_makespan=greedy.makespan,
                ideal_average_bound=ideal,
                naive_makespan=naive,
                speedup=naive / greedy.makespan,
            )
    rows = table.rows
    result.require(
        all(row["greedy_makespan"] <= row["ideal_average_bound"] for row in rows),
        "the greedy makespan respects the classical sum/p + max list-scheduling bound",
    )
    result.require(
        all(
            row["speedup"]
            >= 0.5 * min(row["n"] / row["processors"], row["max_radius"] / row["avg_radius"])
            for row in rows
        ),
        "the speed-up from processor reuse tracks min(n/p, max_radius/avg_radius)",
    )
    result.require(
        all(
            row["speedup"] >= 2.0
            for row in rows
            if row["n"] >= 8 * row["processors"]
        ),
        "with at least 8 node-jobs per processor, reuse beats the lock-step simulator by 2x",
    )
    result.require(
        all(row["naive_makespan"] >= row["max_radius"] * (row["n"] // row["processors"]) for row in rows),
        "the lock-step makespan scales with the worst-case radius",
    )
    return result
