"""Experiment E4 — Theorem 1: the slice construction forces a large average.

Paper claim (Theorem 1): the average complexity of 3-colouring the
``n``-ring is ``Omega(log* n)``.  The proof concatenates slices, each centred
on a vertex that Linial's bound forces to use radius at least
``ceil((1/2) log*(n/2))``, so that at least half of the identifiers live in
slices whose centres keep a large radius, and Lemma 3 spreads that radius
onto their neighbours.

The executable version applies the slice construction to the Cole–Vishkin
algorithm (run through the round-to-ball compiler), evaluates the average
radius on the constructed permutation, and checks that it sits at or above
the Linial threshold — i.e. that averaging never beats the lower bound.  A
random permutation is evaluated alongside for context.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.full_gather import BallSimulationOfRounds
from repro.core.certification import certify
from repro.core.runner import run_ball_algorithm
from repro.experiments.harness import ExperimentResult
from repro.model.identifiers import random_assignment
from repro.theory.linial import linial_lower_bound_radius
from repro.theory.lower_bound import build_hard_assignment
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike
from repro.utils.tables import Table


def run(
    sizes: Sequence[int] | None = None, small: bool = False, seed: SeedLike = 23
) -> ExperimentResult:
    """Run E4 on the given ring sizes."""
    if sizes is None:
        sizes = [16, 32, 64] if small else [16, 32, 64, 128]
    sizes = list(sizes)
    table = Table(
        columns=(
            "n",
            "linial_threshold",
            "slices",
            "slice_center_min_radius",
            "avg_on_construction",
            "avg_on_random",
        ),
        title="E4: slice construction for the average lower bound",
    )
    result = ExperimentResult(
        experiment_id="E4",
        title="average lower bound for 3-colouring",
        claim="the slice construction keeps the average radius at Omega(log* n)",
        table=table,
    )
    for n in sizes:
        algorithm = BallSimulationOfRounds(ColeVishkinRing(n))
        construction = build_hard_assignment(n, algorithm, seed=seed)
        graph = cycle_graph(n)
        hard_trace = run_ball_algorithm(graph, construction.assignment, algorithm)
        certify("3-coloring", graph, construction.assignment, hard_trace)
        random_ids = random_assignment(n, seed=seed)
        random_trace = run_ball_algorithm(graph, random_ids, algorithm)
        table.add_row(
            n=n,
            linial_threshold=linial_lower_bound_radius(n),
            slices=construction.slice_count,
            slice_center_min_radius=min(construction.achieved_center_radii),
            avg_on_construction=hard_trace.average_radius,
            avg_on_random=random_trace.average_radius,
        )
    rows = table.rows
    result.require(
        all(row["avg_on_construction"] >= row["linial_threshold"] for row in rows),
        "the average radius on the constructed permutation meets the Linial threshold",
    )
    result.require(
        all(row["slice_center_min_radius"] >= row["linial_threshold"] for row in rows),
        "every extracted slice centre reaches the required radius",
    )
    result.require(
        all(row["avg_on_random"] >= row["linial_threshold"] for row in rows),
        "even random identifiers cannot push the average below the threshold",
    )
    return result
