"""Experiment E13 — the distribution of both measures over identifier assignments.

The paper's measures are worst cases over the identifier assignment; the
follow-up works it motivated ("How long does an *ordinary* node with an
*ordinary* identifier take?") ask for the whole **distribution**.  This
experiment computes it both ways and compares:

* **exactly**, over all ``n!`` assignments, via the orbit-weighted
  canonical enumeration of :mod:`repro.dist.exact` (certificate included,
  total weight exactly ``n!``), and
* **sampled**, via the seeded streaming estimators of
  :mod:`repro.dist.sampling` (standard errors included),

for the largest-ID algorithm on cycles and random trees.  The headline
shape it reproduces: **the average measure concentrates while the max does
not** — on the cycle the classic measure's distribution is a point mass at
``floor(n/2)`` (every assignment pays the worst case), whereas the average
measure's mass sits in a narrow band at the ``Theta(log n)`` scale, far
below its own worst case; on trees the average's spread is strictly smaller
than the max's.  Sampled estimates agree with the exact distributions
within their confidence intervals under a fixed seed.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.measures import exact_measure_distribution, sampled_measure_distribution
from repro.dist.distribution import ascii_pmf
from repro.experiments.harness import ExperimentResult
from repro.theory.bounds import largest_id_average_upper_bound
from repro.topology.cycle import cycle_graph
from repro.topology.random_graphs import random_tree
from repro.utils.tables import Table

#: Fixed tree seed: E13 compares methods on one deterministic instance.
TREE_SEED = 7


def run(
    sizes: Sequence[int] | None = None,
    samples: int = 192,
    small: bool = False,
    seed: int = 5,
) -> ExperimentResult:
    """Run E13: exact vs sampled measure distributions on cycles and trees."""
    if sizes is None:
        sizes = [5, 6] if small else [6, 7, 8]
    sizes = list(sizes)
    table = Table(
        columns=(
            "family",
            "n",
            "method",
            "weight",
            "avg_mean",
            "avg_std",
            "avg_q90",
            "avg_se",
            "avg_worst_bound",
            "max_mean",
            "max_std",
        ),
        title="E13: measure distributions over identifier assignments (largest-ID)",
    )
    result = ExperimentResult(
        experiment_id="E13",
        title="measure distributions over identifier assignments",
        claim=(
            "over all n! assignments the average measure concentrates in a narrow "
            "band far below the classic measure, which stays pinned at its worst "
            "case; sampling reproduces the exact distribution within its CIs"
        ),
        table=table,
    )
    algorithm = LargestIdAlgorithm()
    families = (
        ("cycle", lambda n: cycle_graph(n)),
        ("tree", lambda n: random_tree(n, seed=TREE_SEED + n)),
    )
    exact_by_key: dict[tuple[str, int], dict] = {}
    sampled_by_key: dict[tuple[str, int], dict] = {}
    last_exact = None
    for family, build in families:
        for n in sizes:
            graph = build(n)
            exact = exact_measure_distribution(graph, algorithm)
            distribution = exact.distribution
            average = distribution.average_distribution()
            maximum = distribution.max_distribution()
            exact_row = {
                "family": family,
                "n": n,
                "method": "exact",
                "weight": distribution.total_weight,
                "avg_mean": average.mean(),
                "avg_std": average.std(),
                "avg_q90": float(average.quantile(0.9)),
                "avg_se": 0.0,
                "avg_worst_bound": largest_id_average_upper_bound(n)
                if family == "cycle"
                else float(average.max()),
                "max_mean": maximum.mean(),
                "max_std": maximum.std(),
            }
            table.add_row(**exact_row)
            exact_by_key[(family, n)] = exact_row
            if family == "cycle":
                last_exact = (graph.name, exact)
            sampled = sampled_measure_distribution(
                graph, algorithm, samples=samples, seed=seed + n
            )
            sampled_average = sampled.distribution.average_distribution()
            sampled_max = sampled.distribution.max_distribution()
            sampled_row = {
                "family": family,
                "n": n,
                "method": "sample",
                "weight": sampled.distribution.total_weight,
                "avg_mean": sampled.average.mean,
                "avg_std": sampled.average.std,
                "avg_q90": float(sampled_average.quantile(0.9)),
                "avg_se": sampled.average.std_error,
                "avg_worst_bound": exact_row["avg_worst_bound"],
                "max_mean": sampled.maximum.mean,
                "max_std": sampled_max.std(),
            }
            table.add_row(**sampled_row)
            sampled_by_key[(family, n)] = sampled_row
    # ------------------------------------------------------------------
    # shape checks: the paper's story, now at the distribution level
    # ------------------------------------------------------------------
    result.require(
        all(row["weight"] == _factorial(row["n"]) for row in exact_by_key.values()),
        "every exact distribution covers all n! assignments (total weight n!)",
    )
    result.require(
        all(
            row["max_std"] == 0.0 and row["max_mean"] == row["n"] // 2
            for (family, _), row in exact_by_key.items()
            if family == "cycle"
        ),
        "on the cycle the classic measure is a point mass at floor(n/2): "
        "no assignment escapes the worst case",
    )
    result.require(
        all(
            row["avg_std"] <= 0.15 * row["avg_mean"]
            and row["avg_q90"] < row["max_mean"]
            for (family, _), row in exact_by_key.items()
            if family == "cycle"
        ),
        "on the cycle the average measure concentrates: its spread stays below "
        "15% of its mean and its 90th percentile below the classic value",
    )
    result.require(
        all(
            row["avg_std"] < row["max_std"]
            for (family, _), row in exact_by_key.items()
            if family == "tree"
        ),
        "on trees the average measure is strictly more concentrated than the max",
    )
    result.require(
        all(
            abs(sampled_by_key[key]["avg_mean"] - row["avg_mean"])
            <= max(4.0 * sampled_by_key[key]["avg_se"], 1e-9)
            for key, row in exact_by_key.items()
        ),
        "sampled means match the exact means within 4 standard errors (fixed seed)",
    )
    if len(sizes) >= 2:
        ratios = [
            exact_by_key[("cycle", n)]["avg_mean"] / exact_by_key[("cycle", n)]["max_mean"]
            for n in sizes
        ]
        result.require(
            ratios[-1] <= ratios[0] + 1e-9,
            "the exact mean-average/mean-max ratio does not grow with n",
        )
    if last_exact is not None:
        name, exact = last_exact
        result.add_note(
            f"exact pmf of the average measure on {name} "
            f"(weight {exact.certificate.total_weight} from "
            f"{exact.certificate.canonical_leaves} canonical classes):\n"
            + ascii_pmf(exact.distribution.average_distribution())
        )
    return result


def _factorial(n: int) -> int:
    import math

    return math.factorial(n)
