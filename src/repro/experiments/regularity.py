"""Experiment E5 — the regularity lemmas (Lemmas 2 and 3) on real executions.

Paper claims: for minimal colouring algorithms, (Lemma 2) the radii of the
vertices between two vertices ``x`` and ``y`` separated by ``k`` vertices
are at most ``max(r(x), r(y)) + k``, and (Lemma 3) the average radius within
distance ``r/2`` of a vertex of radius ``r`` is ``Omega(r)``.

The experiment measures both quantities on the executions of Cole–Vishkin
(whose perfectly flat radius profile satisfies the lemmas with room to
spare) and of the largest-ID algorithm (whose radius profile is highly
skewed, showing the lemmas are not vacuous: the worst Lemma 3 ratio drops
well below 1 but stays bounded away from 0 at the measured sizes).
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.full_gather import BallSimulationOfRounds
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.api.session import Session
from repro.experiments.harness import ExperimentResult
from repro.model.identifiers import random_assignment
from repro.theory.minimality import lemma2_violations, minimum_lemma3_ratio
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike
from repro.utils.tables import Table


def run(
    sizes: Sequence[int] | None = None, small: bool = False, seed: SeedLike = 31
) -> ExperimentResult:
    """Run E5 on the given ring sizes."""
    if sizes is None:
        sizes = [16, 32, 64] if small else [16, 32, 64, 128]
    sizes = list(sizes)
    table = Table(
        columns=(
            "n",
            "algorithm",
            "lemma2_violations",
            "lemma3_min_ratio",
            "max_radius",
            "avg_radius",
        ),
        title="E5: regularity of the radius distribution",
    )
    result = ExperimentResult(
        experiment_id="E5",
        title="regularity lemmas 2 and 3",
        claim="radii of nearby vertices cannot differ wildly for colouring algorithms",
        table=table,
    )
    session = Session()
    for n in sizes:
        graph = cycle_graph(n)
        ids = random_assignment(n, seed=seed)
        cv_trace = session.trace(graph, ids, BallSimulationOfRounds(ColeVishkinRing(n)))
        largest_trace = session.trace(graph, ids, LargestIdAlgorithm())
        for name, trace in (("cole-vishkin", cv_trace), ("largest-id", largest_trace)):
            table.add_row(
                n=n,
                algorithm=name,
                lemma2_violations=len(lemma2_violations(trace, graph, max_separation=8)),
                lemma3_min_ratio=minimum_lemma3_ratio(trace, graph),
                max_radius=trace.max_radius,
                avg_radius=trace.average_radius,
            )
    cv_rows = [row for row in table.rows if row["algorithm"] == "cole-vishkin"]
    result.require(
        all(row["lemma2_violations"] == 0 for row in cv_rows),
        "Cole–Vishkin's radius profile satisfies the Lemma 2 bound everywhere",
    )
    result.require(
        all(row["lemma3_min_ratio"] >= 0.5 for row in cv_rows),
        "Cole–Vishkin's local averages stay within a factor 2 of the radius (Lemma 3)",
    )
    largest_rows = [row for row in table.rows if row["algorithm"] == "largest-id"]
    result.require(
        all(row["lemma3_min_ratio"] > 0 for row in largest_rows),
        "even the skewed largest-ID profile keeps a positive Lemma 3 ratio",
    )
    return result
