"""Experiment E1 — largest-ID on a cycle: average versus worst case.

Paper claim (Section 2): the largest-ID problem on the ``n``-cycle has
worst-case (classic) complexity ``Theta(n)``, yet the natural algorithm's
*average* radius is ``Theta(log n)`` in the worst case over identifier
assignments — an exponential separation between the two measures.

For each ring size the experiment evaluates the algorithm on

* the provably worst arrangement built from the recurrence
  (:func:`repro.theory.recurrence.worst_case_cycle_arrangement`),
* a uniformly random arrangement (for contrast), and

compares the measured averages against the exact bound
``(floor(n/2) + a(n-1)) / n`` and the measured maxima against ``floor(n/2)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.api.session import Session
from repro.core.analysis import fit_growth
from repro.core.certification import certify
from repro.experiments.harness import ExperimentResult, default_ring_sizes
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.theory.bounds import largest_id_average_upper_bound, largest_id_worst_case_bound
from repro.theory.recurrence import worst_case_cycle_arrangement
from repro.topology.cycle import cycle_graph
from repro.utils.rng import SeedLike
from repro.utils.tables import Table


def run(
    sizes: Sequence[int] | None = None, small: bool = False, seed: SeedLike = 7
) -> ExperimentResult:
    """Run E1 on the given ring sizes (defaults to the shared power-of-two sweep)."""
    sizes = list(sizes) if sizes is not None else default_ring_sizes(small)
    algorithm = LargestIdAlgorithm()
    table = Table(
        columns=(
            "n",
            "avg_worst_ids",
            "avg_bound",
            "avg_random_ids",
            "max_radius",
            "max_bound",
            "gap_max_over_avg",
        ),
        title="E1: largest-ID on the n-cycle",
    )
    result = ExperimentResult(
        experiment_id="E1",
        title="largest-ID on a cycle",
        claim="average radius is Theta(log n) while the classic measure is Theta(n)",
        table=table,
    )
    averages = []
    maxima = []
    # Every size and assignment shares one API session: each (graph,
    # algorithm) pair keeps its engine runner and decision cache warm.
    session = Session()
    for n in sizes:
        graph = cycle_graph(n)
        worst_ids = IdentifierAssignment(worst_case_cycle_arrangement(n))
        worst_trace = session.trace(graph, worst_ids, algorithm)
        certify("largest-id", graph, worst_ids, worst_trace)
        random_ids = random_assignment(n, seed=seed)
        random_trace = session.trace(graph, random_ids, algorithm)
        certify("largest-id", graph, random_ids, random_trace)
        avg_bound = largest_id_average_upper_bound(n)
        max_bound = largest_id_worst_case_bound(n)
        table.add_row(
            n=n,
            avg_worst_ids=worst_trace.average_radius,
            avg_bound=avg_bound,
            avg_random_ids=random_trace.average_radius,
            max_radius=worst_trace.max_radius,
            max_bound=max_bound,
            gap_max_over_avg=worst_trace.max_radius / worst_trace.average_radius,
        )
        averages.append(worst_trace.average_radius)
        maxima.append(float(worst_trace.max_radius))
    if len(sizes) >= 3:
        avg_fit = fit_growth(sizes, averages)
        max_fit = fit_growth(sizes, maxima)
        result.add_note(f"average radius growth fit: {avg_fit.best_name}")
        result.add_note(f"worst-case radius growth fit: {max_fit.best_name}")
        result.require(
            avg_fit.best_name in ("constant", "log*", "loglog", "log")
            or avg_fit.is_consistent_with("log", tolerance=2.0),
            "average radius on the worst assignment grows sub-polynomially (log-like)",
        )
        result.require(
            max_fit.best_name in ("linear", "nlogn"),
            "classic (max) radius grows linearly in n",
        )
    final_rows = table.rows
    result.require(
        all(row["avg_worst_ids"] <= row["avg_bound"] + 1e-9 for row in final_rows),
        "measured worst average never exceeds the recurrence bound (n/2 + a(n-1))/n",
    )
    result.require(
        all(row["max_radius"] == row["max_bound"] for row in final_rows),
        "the maximum-identifier vertex needs exactly floor(n/2) rounds",
    )
    return result
