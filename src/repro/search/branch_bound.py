"""Exact adversary search: canonical enumeration with branch and bound.

The legacy :class:`~repro.core.adversary.ExhaustiveAdversary` evaluates all
``n!`` identifier permutations.  This module replaces that loop with a
depth-first search that

1. **assigns identifiers incrementally**, position by position, along a BFS
   order from a graph pseudo-centre, so the labelled region stays connected
   and whole balls become fully labelled early;
2. **simulates eagerly**: the moment the radius-``r`` ball of a node is
   fully labelled, the node's decision at radius ``r`` is computed (through
   the engine session, so repeated ball patterns hit the decision cache) —
   by the time a leaf is reached the objective is already known;
3. **prunes by symmetry**: only assignments that are lexicographically
   minimal within their automorphism orbit are enumerated (see
   :mod:`repro.search.automorphisms`), which alone divides the search space
   by the group order; and
4. **prunes by bound**: an admissible upper bound on the objective of every
   completion — decided nodes contribute their exact radius, undecided nodes
   their radius cap — closes whole subtrees that cannot beat the incumbent.

The search is exact: it returns the same optimum value as the full ``n!``
enumeration, together with a :class:`SearchCertificate` recording the group
used and the pruning counters, so the claim is auditable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

from repro.core.adversary import SESSION_CACHE_MAX_ENTRIES, validate_objective
from repro.core.algorithm import BallAlgorithm
from repro.engine.cache import MISSING as _MISSING
from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.errors import AlgorithmError, AnalysisError
from repro.model.graph import Graph
from repro.obs import metrics as _metrics
from repro.obs.spans import span as _obs_span
from repro.search.automorphisms import (
    DEFAULT_MAX_GROUP_SIZE,
    AutomorphismGroup,
    automorphism_group,
)

#: Session cache bound — the same memory policy as every other search
#: session (:data:`repro.core.adversary.SESSION_CACHE_MAX_ENTRIES`).
SEARCH_CACHE_MAX_ENTRIES = SESSION_CACHE_MAX_ENTRIES

#: Canonical leaves buffered per kernel call on the batched path.
LEAF_COHORT_ROWS = 256

#: Lazy-compilation sentinel for the search's kernel instance.
_KERNEL_UNSET = object()


def _publish_search_metrics(stats: dict) -> None:
    """Push one finished search's counters into the process-wide registry.

    Called once per search at the same point the local ``stats`` dict is
    folded into the certificate — no-op unless ``REPRO_OBS=on``.
    """
    _metrics.add("search.nodes", stats["nodes"])
    _metrics.add("search.leaves", stats["leaves"])
    _metrics.add("search.pruned_by_symmetry", stats["sym"])
    _metrics.add("search.pruned_by_bound", stats.get("bound", 0))


@dataclass(frozen=True)
class SearchCertificate:
    """Audit trail of one exact search.

    ``space_size`` is the full ``n!`` the legacy exhaustive adversary would
    enumerate; ``canonical_leaves`` is how many symmetry-inequivalent
    assignments the search actually evaluated to completion.  The two
    pruning counters record how many subtrees were closed by the symmetry
    test and by the admissible bound respectively.  A certificate with
    ``exact=True`` asserts that every assignment not enumerated was either
    symmetric to an enumerated one or provably unable to beat the optimum.
    """

    exact: bool
    objective: str
    space_size: int
    group_order: int
    group_respects_ports: bool
    canonical_leaves: int
    nodes_expanded: int
    pruned_by_symmetry: int
    pruned_by_bound: int
    incumbent_seeded: bool

    def as_dict(self) -> dict:
        """JSON-friendly form (campaign rows, benchmark artifacts)."""
        return {
            "exact": self.exact,
            "objective": self.objective,
            "space_size": self.space_size,
            "group_order": self.group_order,
            "group_respects_ports": self.group_respects_ports,
            "canonical_leaves": self.canonical_leaves,
            "nodes_expanded": self.nodes_expanded,
            "pruned_by_symmetry": self.pruned_by_symmetry,
            "pruned_by_bound": self.pruned_by_bound,
            "incumbent_seeded": self.incumbent_seeded,
        }


@dataclass
class SearchOutcome:
    """Raw result of :meth:`BranchAndBoundSearch.run` (position-id tuple)."""

    identifiers: tuple[int, ...]
    value: float
    certificate: SearchCertificate


class BranchAndBoundSearch:
    """One exact search session over the assignments of a fixed instance.

    Parameters
    ----------
    graph, algorithm, objective:
        The instance; the objective is one of ``average``, ``max``, ``sum``.
    use_bound:
        Disable to enumerate every canonical assignment (pure symmetry
        pruning, used by the pruned-exhaustive adversary and the property
        tests that compare leaf counts).
    respect_ports:
        Which symmetry notion to use.  ``None`` (default) asks the
        algorithm: port-preserving symmetries unless it declares
        ``uses_ports = False``.  Forcing ``False`` for a port-reading
        algorithm is unsound.
    max_group_size:
        Cap forwarded to :func:`~repro.search.automorphisms.automorphism_group`.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: BallAlgorithm,
        objective: str = "average",
        use_bound: bool = True,
        respect_ports: Optional[bool] = None,
        max_group_size: int = DEFAULT_MAX_GROUP_SIZE,
    ) -> None:
        validate_objective(objective)
        if graph.n == 0:
            raise AnalysisError("cannot search assignments of an empty graph")
        self.graph = graph
        self.algorithm = algorithm
        self.objective = objective
        self.use_bound = use_bound
        if respect_ports is None:
            respect_ports = bool(getattr(algorithm, "uses_ports", True))
        self.group: AutomorphismGroup = automorphism_group(
            graph, respect_ports=respect_ports, max_size=max_group_size
        )
        self.cache = DecisionCache(algorithm, max_entries=SEARCH_CACHE_MAX_ENTRIES)
        self.runner = FrontierRunner(graph, algorithm, cache=self.cache)
        self._kernel: Any = _KERNEL_UNSET
        self._prepare_static_tables()

    @property
    def kernel(self):
        """The search's compiled batch instance (built on first use).

        Used by the canonical-leaf cohort path (:meth:`run_batched`): leaves
        are buffered and evaluated as whole matrices through
        :func:`repro.kernel.compile.simulate_batch` instead of one eager
        simulation per DFS step.
        """
        if self._kernel is _KERNEL_UNSET:
            from repro.kernel.compile import compile_instance

            self._kernel = compile_instance(
                self.graph, self.algorithm, validate=False
            )
        return self._kernel

    # ------------------------------------------------------------------
    # static precomputation (assignment-independent)
    # ------------------------------------------------------------------
    def _prepare_static_tables(self) -> None:
        graph, runner = self.graph, self.runner
        n = graph.n
        # BFS order from a pseudo-centre keeps the labelled region connected,
        # so balls become fully labelled as early as possible.
        center = min(graph.positions(), key=graph.eccentricity)
        self.order: tuple[int, ...] = runner._plan(center).discovery
        slot_of = [0] * n
        for slot, position in enumerate(self.order):
            slot_of[position] = slot
        self.slot_of = slot_of
        self.plans = [runner._plan(v) for v in graph.positions()]
        self.caps = [plan.saturation_radius() + 1 for plan in self.plans]
        # determined_depth[v][r]: DFS depth (number of labelled slots) at
        # which the radius-r ball of v is fully labelled.
        self.determined_depth: list[list[int]] = []
        events: list[set[int]] = [set() for _ in range(n + 1)]
        for v in graph.positions():
            plan = self.plans[v]
            depths = []
            for radius in range(self.caps[v] + 1):
                prefix = plan.prefix(radius)
                depth = 1 + max(slot_of[u] for u in prefix)
                depths.append(depth)
                events[depth].add(v)
            self.determined_depth.append(depths)
        self.events: list[tuple[int, ...]] = [tuple(sorted(bucket)) for bucket in events]
        # Static halves of the decision-cache keys, one (struct_id, prefix)
        # pair per (node, radius).  The DFS decides the same (node, radius)
        # millions of times under different partial assignments, so the
        # cache protocol is inlined against these tables (the same trick as
        # the runner's synchronised sweep).
        self.key_parts: list[list[tuple[int, tuple[int, ...]]]] = [
            list(runner._key_parts_for(self.plans[v], self.caps[v]))
            for v in graph.positions()
        ]
        # Symmetry tables: for each non-identity group element sigma, the
        # slot holding the value that slot j is compared against in the
        # lex test "assignment <= assignment ∘ sigma".
        identity = tuple(range(n))
        self.sigma_slots: list[list[int]] = [
            [slot_of[sigma[self.order[j]]] for j in range(n)]
            for sigma in self.group.elements
            if sigma != identity
        ]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def run(
        self,
        incumbent: Optional[tuple[int, ...]] = None,
        on_leaf: Optional[Callable[[Sequence[int], Sequence[int]], None]] = None,
    ) -> SearchOutcome:
        """Run the search; ``incumbent`` optionally seeds the bound.

        The incumbent, when given, is a full position->identifier tuple; it
        is evaluated through the same engine session and becomes the value
        to beat.  The returned optimum is exact either way.

        ``on_leaf`` is the weighted-enumeration hook used by
        :mod:`repro.dist.exact`: it is invoked at every canonical leaf with
        ``(ids_by_position, radius_by_position)``.  Each leaf represents
        exactly ``group.order`` assignments (the group acts freely on
        bijective assignments), so callbacks can weight whatever they
        accumulate by the group order.  Both sequences are the search's
        mutable state — read them synchronously, copy what must survive the
        call.  Callbacks only see every canonical class when the bound is
        disabled (``use_bound=False``); with bounding enabled, subtrees that
        cannot beat the incumbent are skipped and never reach the hook.

        When bounding is disabled *and* the algorithm compiles to a
        vectorised kernel rule, the search delegates to :meth:`run_batched`:
        the enumeration is identical (same canonical leaves, same expansion
        counters, same witness), but leaves are evaluated as whole cohorts
        through the batch kernel instead of eagerly during the DFS.
        """
        if not self.use_bound and self.kernel.vectorized:
            return self.run_batched(incumbent=incumbent, on_leaf=on_leaf)
        graph, runner = self.graph, self.runner
        n = graph.n
        objective = self.objective
        maximise_max = objective == "max"
        plans, caps = self.plans, self.caps
        determined_depth, events = self.determined_depth, self.events
        key_parts = self.key_parts
        cache = self.cache
        table = cache._table
        relabel = cache.relabel_ids
        decide_raw = self.algorithm.decide
        view_of = runner._view
        full_symmetric = self.group.full_symmetric
        sigma_slots = self.sigma_slots
        order = self.order

        # Mutable DFS state.
        val: list[int] = [-1] * n  # identifier placed at each slot
        ids_by_position: list[int] = [-1] * n
        used = [False] * n
        next_radius = [0] * n
        radius_of: list[Optional[int]] = [None] * n
        # Admissible optimistic totals: decided nodes contribute exactly,
        # undecided ones their cap.
        optimistic_sum = sum(caps)
        # Per-sigma lex-comparison state: index of the first undecided
        # comparison slot; -1 once the element is dismissed (witness strictly
        # larger, can never prune this branch again).
        cmp_index = [0] * len(sigma_slots)

        best_int = -1
        best_ids: Optional[tuple[int, ...]] = None
        incumbent_seeded = False
        if incumbent is not None:
            trace = runner.run(_as_assignment(incumbent))
            best_int = (
                trace.max_radius if maximise_max else trace.sum_radius
            )
            best_ids = tuple(incumbent)
            incumbent_seeded = True

        stats = {"nodes": 0, "leaves": 0, "sym": 0, "bound": 0, "hits": 0, "misses": 0}

        def advance_nodes(depth: int) -> list[tuple[int, int, Optional[int]]]:
            """Decide every node whose next ball became fully labelled.

            The decision-cache protocol is inlined against the static key
            tables (struct ids + member prefixes): the DFS revisits the same
            ``(node, radius)`` pairs millions of times, so the per-decision
            overhead of the generic cache path would dominate the search.
            Returns the undo log; raises if an algorithm refused to output
            within its radius cap (mirroring the runner's contract).
            """
            nonlocal optimistic_sum
            undo: list[tuple[int, int, Optional[int]]] = []
            for v in events[depth]:
                if radius_of[v] is not None:
                    continue
                start = next_radius[v]
                depths_v = determined_depth[v]
                parts_v = key_parts[v]
                cap = caps[v]
                r = start
                decided = None
                while r <= cap and depths_v[r] <= depth:
                    struct_id, prefix = parts_v[r]
                    pattern = tuple(map(ids_by_position.__getitem__, prefix))
                    if relabel:
                        pattern = tuple(
                            sorted(range(len(prefix)), key=pattern.__getitem__)
                        )
                    key = (struct_id, pattern)
                    output = table.get(key, _MISSING)
                    if output is _MISSING:
                        stats["misses"] += 1
                        output = decide_raw(view_of(plans[v], r, ids_by_position))
                        cache.store(key, output)
                    else:
                        stats["hits"] += 1
                    if output is not None:
                        decided = r
                        break
                    if r == cap:
                        undo.append((v, start, None))
                        _rollback(undo)
                        raise AlgorithmError(
                            f"algorithm {self.algorithm.name!r} refused to output at "
                            f"position {v} even at radius {cap} "
                            f"(graph {graph.name!r}, n={graph.n})"
                        )
                    r += 1
                if r == start and decided is None:
                    continue
                undo.append((v, start, None))
                next_radius[v] = r
                if decided is not None:
                    radius_of[v] = decided
                    optimistic_sum += decided - cap
            return undo

        def _rollback(undo: list[tuple[int, int, Optional[int]]]) -> None:
            nonlocal optimistic_sum
            for v, start, _ in reversed(undo):
                if radius_of[v] is not None:
                    optimistic_sum += caps[v] - radius_of[v]
                    radius_of[v] = None
                next_radius[v] = start

        def bound_beats(best: int) -> bool:
            """Whether the admissible bound still allows beating ``best``.

            For sum/average the bound is the incrementally maintained
            ``optimistic_sum``.  For max the scan runs in *reverse*
            assignment order with an early exit: the late slots are exactly
            the likely-undecided nodes, whose caps dominate the bound, so
            the common no-prune answer is found in O(1) rather than O(n).
            """
            if not maximise_max:
                return optimistic_sum > best
            for slot in range(n - 1, -1, -1):
                v = order[slot]
                r = radius_of[v]
                if (caps[v] if r is None else r) > best:
                    return True
            return False

        def dfs(depth: int) -> None:
            nonlocal best_int, best_ids
            if depth == n:
                stats["leaves"] += 1
                if on_leaf is not None:
                    on_leaf(ids_by_position, radius_of)
                if maximise_max:
                    value = max(radius_of[v] for v in range(n))  # type: ignore[type-var]
                else:
                    value = sum(radius_of[v] for v in range(n))  # type: ignore[misc]
                if value > best_int:
                    best_int = value
                    best_ids = tuple(ids_by_position)
                return
            slot = depth
            position = order[slot]
            if full_symmetric:
                candidates: "range | tuple[int, ...]" = (slot,)
            else:
                candidates = range(n)
            for identifier in candidates:
                if used[identifier]:
                    continue
                stats["nodes"] += 1
                val[slot] = identifier
                ids_by_position[position] = identifier
                used[identifier] = True
                new_depth = depth + 1
                # --- symmetry: keep only lex-minimal orbit representatives.
                sym_undo: list[tuple[int, int]] = []
                pruned = False
                for s, slots in enumerate(sigma_slots):
                    j = cmp_index[s]
                    if j < 0:
                        continue
                    advanced = j
                    verdict = 0
                    while advanced < new_depth:
                        other = slots[advanced]
                        if other >= new_depth:
                            break
                        a, b = val[advanced], val[other]
                        if a != b:
                            verdict = -1 if a < b else 1
                            break
                        advanced += 1
                    if verdict == 1:
                        stats["sym"] += 1
                        pruned = True
                        sym_undo.append((s, j))
                        cmp_index[s] = advanced
                        break
                    new_index = -1 if verdict == -1 else advanced
                    if new_index != j:
                        sym_undo.append((s, j))
                        cmp_index[s] = new_index
                if not pruned:
                    node_undo = advance_nodes(new_depth)
                    if self.use_bound and not bound_beats(best_int):
                        stats["bound"] += 1
                    else:
                        dfs(new_depth)
                    _rollback(node_undo)
                for s, j in sym_undo:
                    cmp_index[s] = j
                used[identifier] = False
                ids_by_position[position] = -1
                val[slot] = -1
            return

        with _obs_span(
            "search.branch_bound", n=n, objective=objective, bounded=self.use_bound
        ):
            dfs(0)
        cache.stats.hits += stats["hits"]
        cache.stats.misses += stats["misses"]
        _publish_search_metrics(stats)
        if best_ids is None:
            raise AnalysisError(
                "search terminated without a witness — empty assignment space"
            )
        if objective == "average":
            value = best_int / n
        else:
            value = float(best_int)
        certificate = SearchCertificate(
            exact=True,
            objective=objective,
            space_size=math.factorial(n),
            group_order=self.group.order,
            group_respects_ports=self.group.respects_ports,
            canonical_leaves=stats["leaves"],
            nodes_expanded=stats["nodes"],
            pruned_by_symmetry=stats["sym"],
            pruned_by_bound=stats["bound"],
            incumbent_seeded=incumbent_seeded,
        )
        return SearchOutcome(identifiers=best_ids, value=value, certificate=certificate)

    # ------------------------------------------------------------------
    # batched canonical enumeration
    # ------------------------------------------------------------------
    def _enumerate_canonical(self, visit: Callable[[tuple[int, ...]], None]) -> dict:
        """Depth-first canonical enumeration without eager simulation.

        Runs the exact symmetry pruning of :meth:`run` — only lex-minimal
        orbit representatives survive — but defers all evaluation to the
        caller: ``visit`` receives each canonical leaf as a full
        position -> identifier tuple, in the same DFS order the eager path
        produces.  Returns the ``nodes`` / ``leaves`` / ``sym`` counters,
        which are identical to the eager path's by construction (simulation
        never influenced the tree shape when bounding is off).

        The symmetry logic here is a deliberate twin of the inlined loop in
        :meth:`run` — both hot paths stay closure-free rather than sharing
        a hook-parameterised skeleton.  Any change to the ``sigma_slots``
        lex test or its undo bookkeeping must be mirrored in both places;
        ``tests/search/test_branch_bound.py::TestBatchedEnumeration`` pins
        them to each other leaf by leaf (assignments, radii, counters and
        witness), so a one-sided edit fails loudly.
        """
        n = self.graph.n
        full_symmetric = self.group.full_symmetric
        sigma_slots = self.sigma_slots
        order = self.order
        val: list[int] = [-1] * n
        ids_by_position: list[int] = [-1] * n
        used = [False] * n
        cmp_index = [0] * len(sigma_slots)
        stats = {"nodes": 0, "leaves": 0, "sym": 0}

        def dfs(depth: int) -> None:
            if depth == n:
                stats["leaves"] += 1
                visit(tuple(ids_by_position))
                return
            slot = depth
            position = order[slot]
            if full_symmetric:
                candidates: "range | tuple[int, ...]" = (slot,)
            else:
                candidates = range(n)
            for identifier in candidates:
                if used[identifier]:
                    continue
                stats["nodes"] += 1
                val[slot] = identifier
                ids_by_position[position] = identifier
                new_depth = depth + 1
                used[identifier] = True
                sym_undo: list[tuple[int, int]] = []
                pruned = False
                for s, slots in enumerate(sigma_slots):
                    j = cmp_index[s]
                    if j < 0:
                        continue
                    advanced = j
                    verdict = 0
                    while advanced < new_depth:
                        other = slots[advanced]
                        if other >= new_depth:
                            break
                        a, b = val[advanced], val[other]
                        if a != b:
                            verdict = -1 if a < b else 1
                            break
                        advanced += 1
                    if verdict == 1:
                        stats["sym"] += 1
                        pruned = True
                        sym_undo.append((s, j))
                        cmp_index[s] = advanced
                        break
                    new_index = -1 if verdict == -1 else advanced
                    if new_index != j:
                        sym_undo.append((s, j))
                        cmp_index[s] = new_index
                if not pruned:
                    dfs(new_depth)
                for s, j in sym_undo:
                    cmp_index[s] = j
                used[identifier] = False
                ids_by_position[position] = -1
                val[slot] = -1

        dfs(0)
        return stats

    def run_batched(
        self,
        incumbent: Optional[tuple[int, ...]] = None,
        on_leaf: Optional[Callable[[Sequence[int], Sequence[int]], None]] = None,
        cohort_rows: int = LEAF_COHORT_ROWS,
    ) -> SearchOutcome:
        """Exhaust every canonical class, evaluating leaf cohorts as batches.

        The batch twin of :meth:`run` with ``use_bound=False``: canonical
        assignments are enumerated by pure symmetry-pruned DFS, buffered
        ``cohort_rows`` at a time, and each cohort is one
        :func:`repro.kernel.compile.simulate_batch` call on the search's
        compiled instance — array speed for vectorised rules, the engine
        session fallback otherwise.  The optimum, the witness, the
        ``on_leaf`` stream (``(ids_by_position, radius_by_position)`` per
        canonical leaf, in DFS order) and the certificate counters are all
        identical to the eager path; bound pruning never applies here, so
        ``pruned_by_bound`` is 0 by construction.
        """
        n = self.graph.n
        objective = self.objective
        maximise_max = objective == "max"
        kernel = self.kernel

        best_int = -1
        best_ids: Optional[tuple[int, ...]] = None
        incumbent_seeded = False
        if incumbent is not None:
            trace = self.runner.run(_as_assignment(incumbent))
            best_int = trace.max_radius if maximise_max else trace.sum_radius
            best_ids = tuple(incumbent)
            incumbent_seeded = True

        buffer: list[tuple[int, ...]] = []

        def flush() -> None:
            nonlocal best_int, best_ids
            if not buffer:
                return
            # One cohort = one block of the kernel's multi-instance batch
            # entry point (the same surface the campaign layer submits
            # cross-cell batches through).
            from repro.kernel.compile import BatchRequest, simulate_many

            (batched,) = simulate_many(
                [BatchRequest(kernel, buffer, pre_validated=True)]
            )
            for ids_row, radii in zip(buffer, batched):
                if on_leaf is not None:
                    on_leaf(list(ids_row), list(radii))
                value = max(radii) if maximise_max else sum(radii)
                if value > best_int:
                    best_int = value
                    best_ids = ids_row
            buffer.clear()

        def visit(ids_row: tuple[int, ...]) -> None:
            buffer.append(ids_row)
            if len(buffer) >= cohort_rows:
                flush()

        with _obs_span(
            "search.branch_bound", n=n, objective=objective, bounded=False
        ):
            stats = self._enumerate_canonical(visit)
            flush()
        _publish_search_metrics(stats)
        if best_ids is None:
            raise AnalysisError(
                "search terminated without a witness — empty assignment space"
            )
        value = best_int / n if objective == "average" else float(best_int)
        certificate = SearchCertificate(
            exact=True,
            objective=objective,
            space_size=math.factorial(n),
            group_order=self.group.order,
            group_respects_ports=self.group.respects_ports,
            canonical_leaves=stats["leaves"],
            nodes_expanded=stats["nodes"],
            pruned_by_symmetry=stats["sym"],
            pruned_by_bound=0,
            incumbent_seeded=incumbent_seeded,
        )
        return SearchOutcome(identifiers=best_ids, value=value, certificate=certificate)


def _as_assignment(ids: tuple[int, ...]):
    from repro.model.identifiers import IdentifierAssignment

    return IdentifierAssignment(ids)
