"""Drop-in adversaries backed by the second-generation search layer.

These classes implement the :class:`~repro.core.adversary.Adversary`
interface, so every call site that accepts the legacy adversaries — the
measures, the campaign grid, the CLI — can use them unchanged.  The exact
ones attach a :class:`~repro.search.branch_bound.SearchCertificate` to the
result; the portfolio attaches a
:class:`~repro.search.portfolio.PortfolioCertificate`.
"""

from __future__ import annotations

import math
from random import Random
from typing import Optional, Sequence

from repro.core.adversary import (
    Adversary,
    AdversaryResult,
    trace_objective,
    validate_objective,
)
from repro.core.algorithm import BallAlgorithm
from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.search.branch_bound import BranchAndBoundSearch
from repro.search.incremental import SwapEvaluator
from repro.search.portfolio import PortfolioSearch, StrategySpec
from repro.search.strategies import hill_climb
from repro.utils.validation import require_positive_int

#: Node cap for the exact searches.  Symmetry and bounding push exhaustive
#: feasibility past the legacy limit of 9, but the search is still factorial
#: in the worst (asymmetric) case, so a guard remains.
DEFAULT_EXACT_MAX_NODES = 12

#: Budget on ``n! / |Aut|``, the number of canonical assignment classes an
#: exact search may face.  This is the honest feasibility measure — the
#: 10-cycle (181 440 classes) is fine, the 12-path (239 500 800) is not,
#: and ``K_12`` (a single class) is trivial despite its 12 nodes.
DEFAULT_MAX_CLASSES = 250_000


class PrunedExhaustiveAdversary(Adversary):
    """Exact search by canonical enumeration (symmetry pruning only).

    Enumerates exactly one identifier assignment per orbit of the graph's
    automorphism group — ``n! / |Aut|`` assignments on a symmetric topology
    instead of ``n!`` — and evaluates each one incrementally.  The result is
    the same certified optimum as the legacy
    :class:`~repro.core.adversary.ExhaustiveAdversary`, with the enumeration
    audit on :attr:`AdversaryResult.certificate`.
    """

    use_bound = False

    def __init__(
        self,
        max_nodes: int = DEFAULT_EXACT_MAX_NODES,
        respect_ports: Optional[bool] = None,
        max_classes: int = DEFAULT_MAX_CLASSES,
    ) -> None:
        require_positive_int(max_nodes, "max_nodes")
        require_positive_int(max_classes, "max_classes")
        self.max_nodes = max_nodes
        self.max_classes = max_classes
        self.respect_ports = respect_ports

    def maximise(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str = "average"
    ) -> AdversaryResult:
        validate_objective(objective)
        if graph.n > self.max_nodes:
            raise ConfigurationError(
                f"{type(self).__name__} is limited to {self.max_nodes} nodes "
                f"(got {graph.n}); use PortfolioAdversary for larger instances"
            )
        search = BranchAndBoundSearch(
            graph,
            algorithm,
            objective=objective,
            use_bound=self.use_bound,
            respect_ports=self.respect_ports,
        )
        classes = math.factorial(graph.n) // max(1, search.group.order)
        if classes > self.max_classes:
            raise ConfigurationError(
                f"{type(self).__name__} on {graph.name!r} faces ~{classes} canonical "
                f"assignment classes (n! / |Aut| with |Aut| = {search.group.order}), "
                f"above the budget of {self.max_classes}; raise max_classes or use "
                f"PortfolioAdversary for a certified lower bound"
            )
        incumbent, incumbent_evaluations = self._incumbent(graph, algorithm, objective)
        outcome = search.run(incumbent=incumbent)
        assignment = IdentifierAssignment(outcome.identifiers)
        trace = search.runner.run(assignment)
        value = trace_objective(trace, objective)
        certificate = outcome.certificate
        # Honest total search cost: the canonical leaves enumerated, plus the
        # incumbent hill climb's (incremental) evaluations, plus the search's
        # own re-evaluation of the seeded incumbent.
        evaluations = (
            certificate.canonical_leaves
            + incumbent_evaluations
            + (1 if certificate.incumbent_seeded else 0)
        )
        return AdversaryResult(
            assignment=assignment,
            trace=trace,
            value=value,
            objective=objective,
            evaluations=evaluations,
            exact=True,
            cache_stats=search.cache.stats,
            certificate=outcome.certificate,
        )

    def _incumbent(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str
    ) -> tuple[Optional[tuple[int, ...]], int]:
        """(incumbent assignment or None, evaluations spent finding it).

        Pure enumeration needs no incumbent — nothing is bound-pruned.
        """
        return None, 0


class BranchAndBoundAdversary(PrunedExhaustiveAdversary):
    """Exact search with symmetry pruning *and* admissible-bound pruning.

    On top of canonical enumeration, subtrees whose optimistic objective
    (decided nodes exactly, undecided nodes at their radius caps) cannot
    beat the incumbent are closed without being explored.  A short
    deterministic hill climb seeds the incumbent, so the bound prunes from
    the first branch; the final value is exact either way.
    """

    use_bound = True

    def __init__(
        self,
        max_nodes: int = DEFAULT_EXACT_MAX_NODES,
        respect_ports: Optional[bool] = None,
        seed_incumbent: bool = True,
        max_classes: int = DEFAULT_MAX_CLASSES,
    ) -> None:
        super().__init__(
            max_nodes=max_nodes, respect_ports=respect_ports, max_classes=max_classes
        )
        self.seed_incumbent = seed_incumbent

    def _incumbent(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str
    ) -> tuple[Optional[tuple[int, ...]], int]:
        if not self.seed_incumbent or graph.n < 2:
            return None, 0
        rng = Random(0x5EED)
        evaluator = SwapEvaluator(
            graph,
            algorithm,
            objective=objective,
            ids=random_assignment(graph.n, seed=rng.getrandbits(64)),
        )
        result = hill_climb(evaluator, rng, swaps_per_step=16, max_steps=24)
        return result.identifiers, evaluator.evaluations


class PortfolioAdversary(Adversary):
    """Heuristic search: a parallel portfolio of swap-based strategies.

    The result is a certified **lower bound** on the true worst case
    (``exact=False``); the witness assignment reproduces the reported value
    on re-evaluation, and per-strategy statistics land on the certificate.
    """

    def __init__(
        self,
        strategies: Optional[Sequence[StrategySpec]] = None,
        seed: int = 0,
        workers: Optional[int] = 1,
    ) -> None:
        self.portfolio = PortfolioSearch(
            strategies=strategies, seed=seed, workers=workers
        )

    def maximise(
        self, graph: Graph, algorithm: BallAlgorithm, objective: str = "average"
    ) -> AdversaryResult:
        validate_objective(objective)
        best, certificate = self.portfolio.run(graph, algorithm, objective=objective)
        assignment = IdentifierAssignment(best.identifiers)
        # Re-evaluate the witness in a fresh session: the reported value must
        # be reproducible outside the strategy's incremental bookkeeping.
        evaluator = SwapEvaluator(graph, algorithm, objective=objective, ids=assignment)
        value = evaluator.value
        evaluations = sum(row["evaluations"] for row in certificate.rows)
        return AdversaryResult(
            assignment=assignment,
            trace=evaluator.trace(),
            value=value,
            objective=objective,
            evaluations=evaluations,
            exact=False,
            cache_stats=evaluator.cache_stats,
            certificate=certificate,
        )
