"""Second-generation adversary search over identifier assignments.

Both measures in the paper are worst cases *over the identifier assignment*,
so after the engine made individual runs cheap (PR 1), the dominant cost is
the outer search.  This package is that search layer:

* :mod:`repro.search.automorphisms` — graph symmetry detection (orbit
  refinement plus explicit automorphism groups, cached on the
  :class:`~repro.model.graph.Graph` like frontier plans), which lets exact
  searches enumerate one identifier assignment per symmetry class instead of
  all ``n!`` permutations;
* :mod:`repro.search.branch_bound` — the exact search core: a depth-first
  enumeration of canonical (lex-minimal per orbit) assignments that assigns
  identifiers to positions incrementally, simulates every node as soon as
  its ball is fully labelled, and prunes whole subtrees with an admissible
  bound on the objective;
* :mod:`repro.search.incremental` — :class:`~repro.search.incremental.SwapEvaluator`,
  which re-simulates only the nodes whose views changed after an identifier
  transposition, making local search steps orders of magnitude cheaper than
  full re-evaluation;
* :mod:`repro.search.strategies` — swap-based heuristics (hill climbing,
  simulated annealing, tabu search, random probing) built on the evaluator;
* :mod:`repro.search.portfolio` — a deterministic parallel portfolio that
  races independent strategies through the engine's
  :class:`~repro.engine.batch.BatchExecutor`;
* :mod:`repro.search.adversaries` — drop-in :class:`~repro.core.adversary.Adversary`
  implementations (``pruned-exhaustive``, ``branch-and-bound``,
  ``portfolio``) wired into the campaign grid and the CLI.

Exact searches return a :class:`~repro.search.branch_bound.SearchCertificate`
(on :attr:`AdversaryResult.certificate <repro.core.adversary.AdversaryResult>`)
recording the symmetry group used, the number of canonical classes
enumerated and the subtrees pruned, so results are auditable after the fact.
"""

from repro.search.adversaries import (
    BranchAndBoundAdversary,
    PortfolioAdversary,
    PrunedExhaustiveAdversary,
)
from repro.search.automorphisms import (
    AutomorphismGroup,
    automorphism_group,
    orbit_partition,
    refine_colors,
)
from repro.search.branch_bound import BranchAndBoundSearch, SearchCertificate
from repro.search.incremental import SwapEvaluator
from repro.search.portfolio import PortfolioCertificate, PortfolioSearch, StrategySpec
from repro.search.strategies import (
    StrategyResult,
    hill_climb,
    random_probe,
    simulated_annealing,
    tabu_search,
)

__all__ = [
    "AutomorphismGroup",
    "BranchAndBoundAdversary",
    "BranchAndBoundSearch",
    "PortfolioAdversary",
    "PortfolioCertificate",
    "PortfolioSearch",
    "PrunedExhaustiveAdversary",
    "SearchCertificate",
    "StrategyResult",
    "StrategySpec",
    "SwapEvaluator",
    "automorphism_group",
    "hill_climb",
    "orbit_partition",
    "random_probe",
    "refine_colors",
    "simulated_annealing",
    "tabu_search",
]
