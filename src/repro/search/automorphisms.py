"""Graph symmetries for the adversary search.

The objective of an adversarial search — any function of the multiset of
per-node radii — is invariant under relabelling the *positions* of the graph
by an automorphism: if ``sigma`` maps the graph onto itself, then running an
algorithm under the assignment ``ids ∘ sigma`` produces, node for node, the
radii of ``ids`` shuffled by ``sigma``.  Enumerating one assignment per
orbit of the automorphism group therefore covers the whole search space,
shrinking ``n!`` candidates by a factor of the group order (``2n`` on a
cycle, ``n!`` itself on a complete graph).

Two symmetry notions are provided, because views in the LOCAL model contain
port numbers:

* **port-preserving automorphisms** map port ``p`` of ``v`` to port ``p`` of
  ``sigma(v)``.  Views are preserved exactly, so the reduction is sound for
  *every* algorithm.  On a connected graph such a map is rigid — fully
  determined by the image of one vertex — so the group is found in
  ``O(n · m)`` time without backtracking.
* **adjacency automorphisms** only preserve the edge relation.  They are
  sound for algorithms that declare ``uses_ports = False`` (their ``decide``
  never reads ``port_by_pair``), and they are found by a backtracking search
  seeded with orbit refinement (1-WL colour classes).

Groups are cached on the :class:`~repro.model.graph.Graph` object (like the
engine's frontier plans), so repeated searches on one graph pay the
computation once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.model.graph import Graph

#: Above this group order the adjacency backtracking gives up and the caller
#: falls back to the (always small) port-preserving group.  Orders beyond a
#: few thousand only occur on graphs with huge symmetric pieces (stars,
#: unions of twins), where the complete-graph special case does not apply
#: but a full element table would dominate the search it is meant to prune.
DEFAULT_MAX_GROUP_SIZE = 20_000


def refine_colors(
    graph: Graph, initial: Optional[Sequence[int]] = None
) -> tuple[int, ...]:
    """Stable colouring of the positions by 1-WL (orbit) refinement.

    Starting from ``initial`` (degrees by default), every round recolours a
    position by the multiset of its neighbours' colours, until the partition
    stops splitting.  Positions in different colour classes can never be
    exchanged by an automorphism, which is what prunes the backtracking
    search; positions in the same class *may* be symmetric.
    """
    n = graph.n
    if n == 0:
        return ()
    colors = tuple(initial) if initial is not None else tuple(
        graph.degree(v) for v in graph.positions()
    )
    if len(colors) != n:
        raise ValueError(f"initial colouring covers {len(colors)} positions, graph has {n}")
    while True:
        signatures = [
            (colors[v], tuple(sorted(colors[u] for u in graph.neighbors(v))))
            for v in graph.positions()
        ]
        palette = {signature: index for index, signature in enumerate(sorted(set(signatures)))}
        refined = tuple(palette[signature] for signature in signatures)
        if len(set(refined)) == len(set(colors)):
            return refined
        colors = refined


def port_preserving_automorphisms(graph: Graph) -> list[tuple[int, ...]]:
    """The full group of automorphisms that also preserve port numbers.

    A port-preserving map satisfies ``sigma(adj[v][p]) == adj[sigma(v)][p]``
    for every position ``v`` and port ``p``; on a connected graph it is
    therefore determined by the image of position 0, and each of the ``n``
    candidate images either extends uniquely or fails.  The identity is
    always included.

    The rigidity argument needs connectivity, so on a disconnected graph
    (which none of the simulators accept anyway) the trivial group is
    returned rather than an invalid empty one.
    """
    n = graph.n
    if n == 0:
        return []
    if not graph.is_connected():
        return [tuple(range(n))]
    colors = refine_colors(graph)
    elements: list[tuple[int, ...]] = []
    for seed in graph.positions():
        if colors[seed] != colors[0]:
            continue
        mapping: list[Optional[int]] = [None] * n
        mapping[0] = seed
        used = {seed}
        stack = [0]
        consistent = True
        while stack and consistent:
            v = stack.pop()
            image = mapping[v]
            assert image is not None
            v_neighbors = graph.neighbors(v)
            image_neighbors = graph.neighbors(image)
            if len(v_neighbors) != len(image_neighbors):
                consistent = False
                break
            for port, u in enumerate(v_neighbors):
                target = image_neighbors[port]
                if mapping[u] is None:
                    if target in used:
                        consistent = False
                        break
                    mapping[u] = target
                    used.add(target)
                    stack.append(u)
                elif mapping[u] != target:
                    consistent = False
                    break
        if consistent and None not in mapping:
            elements.append(tuple(mapping))  # type: ignore[arg-type]
    return elements


def adjacency_automorphisms(
    graph: Graph, max_size: int = DEFAULT_MAX_GROUP_SIZE
) -> Optional[list[tuple[int, ...]]]:
    """All adjacency automorphisms, or ``None`` when the group exceeds ``max_size``.

    Backtracking over positions in a refinement-aware order: position ``v``
    may only map to positions of the same 1-WL colour whose adjacency to the
    already-mapped prefix matches.  Complete graphs (group ``S_n``) are the
    caller's job to special-case before calling this.
    """
    n = graph.n
    if n == 0:
        return []
    colors = refine_colors(graph)
    # Map rare colour classes first: fewer candidates near the root.
    class_size: dict[int, int] = {}
    for color in colors:
        class_size[color] = class_size.get(color, 0) + 1
    order = sorted(graph.positions(), key=lambda v: (class_size[colors[v]], v))
    neighbor_sets = [frozenset(graph.neighbors(v)) for v in graph.positions()]
    elements: list[tuple[int, ...]] = []
    mapping: list[Optional[int]] = [None] * n
    used = [False] * n

    def extend(depth: int) -> bool:
        """Depth-first extension; returns False when the cap was hit."""
        if depth == n:
            elements.append(tuple(mapping))  # type: ignore[arg-type]
            return len(elements) <= max_size
        v = order[depth]
        earlier = order[:depth]
        for candidate in graph.positions():
            if used[candidate] or colors[candidate] != colors[v]:
                continue
            ok = True
            for u in earlier:
                if (u in neighbor_sets[v]) != (mapping[u] in neighbor_sets[candidate]):
                    ok = False
                    break
            if not ok:
                continue
            mapping[v] = candidate
            used[candidate] = True
            alive = extend(depth + 1)
            mapping[v] = None
            used[candidate] = False
            if not alive:
                return False
        return True

    if not extend(0):
        return None
    return elements


@dataclass(frozen=True)
class AutomorphismGroup:
    """An explicit automorphism group, as used by the exact searches.

    ``elements`` always contains the identity.  ``full_symmetric`` marks the
    complete-graph case where the group is all of ``S_n`` and enumerating it
    would be absurd — the searches special-case it (a single canonical
    assignment covers the whole space).  ``respects_ports`` records which
    symmetry notion was computed, which the certificates report.
    """

    elements: tuple[tuple[int, ...], ...]
    respects_ports: bool
    full_symmetric: bool = False
    n: int = 0

    @property
    def order(self) -> int:
        """Group order (``n!`` in the ``full_symmetric`` case)."""
        if self.full_symmetric:
            import math

            return math.factorial(self.n)
        return len(self.elements)

    def is_trivial(self) -> bool:
        """Whether only the identity is available for pruning."""
        return not self.full_symmetric and len(self.elements) <= 1


def orbit_partition(group: AutomorphismGroup) -> list[list[int]]:
    """Orbits of the positions under the group (sorted, disjoint, covering)."""
    n = group.n
    if group.full_symmetric:
        return [list(range(n))] if n else []
    seen: set[int] = set()
    orbits: list[list[int]] = []
    for start in range(n):
        if start in seen:
            continue
        orbit = {start}
        frontier = [start]
        while frontier:
            v = frontier.pop()
            for sigma in group.elements:
                image = sigma[v]
                if image not in orbit:
                    orbit.add(image)
                    frontier.append(image)
        seen |= orbit
        orbits.append(sorted(orbit))
    return orbits


def automorphism_group(
    graph: Graph,
    respect_ports: bool = True,
    max_size: int = DEFAULT_MAX_GROUP_SIZE,
) -> AutomorphismGroup:
    """The automorphism group of ``graph``, cached on the graph object.

    With ``respect_ports=True`` (sound for every algorithm) the group
    contains exactly the port-preserving automorphisms.  With
    ``respect_ports=False`` (sound only for ``uses_ports = False``
    algorithms) the full adjacency group is computed instead; complete
    graphs short-circuit to a ``full_symmetric`` marker, and any other graph
    whose group would exceed ``max_size`` elements falls back to the
    port-preserving subgroup — a smaller but always-sound pruning set.
    """
    cache: dict = getattr(graph, "_automorphism_cache", None) or {}
    key = (respect_ports, max_size)
    cached = cache.get(key)
    if cached is not None:
        return cached
    n = graph.n
    if respect_ports:
        group = AutomorphismGroup(
            elements=tuple(port_preserving_automorphisms(graph)),
            respects_ports=True,
            n=n,
        )
    elif n > 0 and graph.is_complete():
        group = AutomorphismGroup(
            elements=(tuple(range(n)),),
            respects_ports=False,
            full_symmetric=True,
            n=n,
        )
    else:
        elements = adjacency_automorphisms(graph, max_size=max_size)
        if elements is None:
            group = AutomorphismGroup(
                elements=tuple(port_preserving_automorphisms(graph)),
                respects_ports=True,
                n=n,
            )
        else:
            group = AutomorphismGroup(
                elements=tuple(elements), respects_ports=False, n=n
            )
    cache[key] = group
    graph._automorphism_cache = cache  # type: ignore[attr-defined]
    return group
