"""Incremental re-evaluation of identifier transpositions.

A local-search step swaps the identifiers of two positions ``a`` and ``b``.
Every node ``v`` whose committed ball (radius ``r(v)``) contains neither
``a`` nor ``b`` sees the exact same views as before at every radius up to
``r(v)``, so its radius and output are unchanged; only the nodes with
``min(d(v, a), d(v, b)) <= r(v)`` need re-simulation, and even those only
from the first radius at which the swap enters their ball.  On large graphs
a swap typically touches a small neighbourhood, which makes a hill-climbing
or annealing step orders of magnitude cheaper than a full re-run.

:class:`SwapEvaluator` maintains the per-node radii and outputs of a current
assignment inside one engine session (frontier plans + decision cache), so
repeated examinations of the same swap also hit the decision cache.

For algorithms with a vectorised kernel rule there is a second gear:
:meth:`SwapEvaluator.peek_values_batch` scores a whole *set* of candidate
transpositions in one :func:`repro.kernel.compile.simulate_batch` call —
one matrix row per candidate — which is how the portfolio strategies
(:mod:`repro.search.strategies`) examine their per-step swap samples.  The
values are bit-identical to :meth:`SwapEvaluator.peek`; the chosen swap is
then committed through the incremental path as before (batch scoring
returns values only, so the winner is re-examined once by :meth:`peek` to
obtain its :class:`SwapDelta` — one extra cheap incremental evaluation per
committed step, counted by ``evaluations`` like any other examination).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.core.adversary import SESSION_CACHE_MAX_ENTRIES, validate_objective
from repro.core.algorithm import BallAlgorithm
from repro.engine.cache import CacheStats, DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace, NodeRecord

#: Session cache bound — the same memory policy as every other search
#: session (:data:`repro.core.adversary.SESSION_CACHE_MAX_ENTRIES`).
SWAP_CACHE_MAX_ENTRIES = SESSION_CACHE_MAX_ENTRIES

#: Minimum candidate-set size at which batch scoring beats per-swap
#: incremental re-simulation; below it the fixed batch dispatch dominates.
MIN_BATCH_SWAPS = 4

#: Lazy-compilation sentinel for the evaluator's kernel instance.
_KERNEL_UNSET = object()


@dataclass(frozen=True)
class SwapDelta:
    """Outcome of examining one transposition without committing it.

    ``changes`` maps each re-simulated position to its new
    ``(radius, output)`` pair; positions outside the map are untouched by
    the swap.  Pass the delta back to :meth:`SwapEvaluator.commit` to apply
    it in ``O(len(changes))``.
    """

    position_a: int
    position_b: int
    value: float
    sum_radius: int
    changes: tuple[tuple[int, int, Any], ...]


class SwapEvaluator:
    """Objective tracking for an evolving assignment under swap moves.

    Parameters
    ----------
    graph, algorithm, objective:
        The fixed instance and the objective to report (``average``, ``max``
        or ``sum``).
    ids:
        Starting assignment; defaults to the identity.
    """

    def __init__(
        self,
        graph: Graph,
        algorithm: BallAlgorithm,
        objective: str = "average",
        ids: Optional[IdentifierAssignment] = None,
    ) -> None:
        from repro.model.identifiers import identity_assignment

        validate_objective(objective)
        self.graph = graph
        self.algorithm = algorithm
        self.objective = objective
        self.cache = DecisionCache(algorithm, max_entries=SWAP_CACHE_MAX_ENTRIES)
        self.runner = FrontierRunner(graph, algorithm, cache=self.cache)
        self._kernel: Any = _KERNEL_UNSET
        self.evaluations = 0
        self._radii: list[int] = []
        self._outputs: list[Any] = []
        self._ids: list[int] = []
        self.reset(ids if ids is not None else identity_assignment(graph.n))

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def reset(self, ids: IdentifierAssignment) -> float:
        """Replace the current assignment (full re-simulation) and return its value."""
        trace = self.runner.run(ids)
        self.evaluations += 1
        self._ids = list(ids.identifiers())
        self._radii = [0] * self.graph.n
        self._outputs = [None] * self.graph.n
        for record in trace:
            self._radii[record.position] = record.radius
            self._outputs[record.position] = record.output
        self._sum_radius = trace.sum_radius
        return self.value

    @property
    def identifiers(self) -> tuple[int, ...]:
        """The current assignment as a position -> identifier tuple."""
        return tuple(self._ids)

    def assignment(self) -> IdentifierAssignment:
        """The current assignment as an :class:`IdentifierAssignment`."""
        return IdentifierAssignment(self._ids)

    @property
    def sum_radius(self) -> int:
        """Total radius of the current assignment."""
        return self._sum_radius

    @property
    def value(self) -> float:
        """Objective value of the current assignment."""
        return self._value_of(self._sum_radius, self._radii)

    @property
    def cache_stats(self) -> CacheStats:
        """Decision-cache statistics of the whole session."""
        return self.cache.stats

    def _value_of(self, sum_radius: int, radii: list[int]) -> float:
        if self.objective == "max":
            return float(max(radii))
        if self.objective == "sum":
            return float(sum_radius)
        return sum_radius / self.graph.n

    def trace(self) -> ExecutionTrace:
        """Materialise the current per-node state as an execution trace."""
        records = {
            position: NodeRecord(
                position=position,
                identifier=self._ids[position],
                radius=self._radii[position],
                output=self._outputs[position],
            )
            for position in self.graph.positions()
        }
        return ExecutionTrace(records)

    # ------------------------------------------------------------------
    # swap moves
    # ------------------------------------------------------------------
    def peek(self, position_a: int, position_b: int) -> SwapDelta:
        """Examine the transposition of two positions without committing it.

        Only nodes whose committed ball contains ``position_a`` or
        ``position_b`` are re-simulated, each from the first radius at which
        the swap becomes visible to it.
        """
        graph = self.graph
        self.evaluations += 1
        scratch = list(self._ids)
        scratch[position_a], scratch[position_b] = (
            scratch[position_b],
            scratch[position_a],
        )
        dist_a = graph.distances_from(position_a)
        dist_b = graph.distances_from(position_b)
        resimulate = self.runner.resimulate_node
        changes: list[tuple[int, int, Any]] = []
        new_sum = self._sum_radius
        for v in graph.positions():
            contact = min(dist_a[v], dist_b[v])
            if contact > self._radii[v]:
                continue
            radius, output = resimulate(scratch, v, start_radius=contact)
            if radius != self._radii[v] or output != self._outputs[v]:
                changes.append((v, radius, output))
                new_sum += radius - self._radii[v]
        if self.objective == "max":
            new_radii = list(self._radii)
            for v, radius, _ in changes:
                new_radii[v] = radius
            value = self._value_of(new_sum, new_radii)
        else:
            value = self._value_of(new_sum, self._radii)
        return SwapDelta(
            position_a=position_a,
            position_b=position_b,
            value=value,
            sum_radius=new_sum,
            changes=tuple(changes),
        )

    def peek_values_batch(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[float]:
        """Objective values of many candidate transpositions, batch-scored.

        One matrix row per candidate (the current assignment with that pair
        swapped), evaluated in a single kernel batch when the algorithm has
        a vectorised rule and the candidate set is worth a batch; otherwise
        each pair goes through the incremental :meth:`peek` path.  Both
        paths return exactly ``[self.peek(a, b).value for a, b in pairs]``
        and count ``len(pairs)`` evaluations, so strategy trajectories are
        identical whichever gear runs.  Scoring never moves the evaluator:
        commit the chosen swap with :meth:`peek` + :meth:`commit` (or
        :meth:`apply_swap`).
        """
        if not pairs:
            return []
        kernel = self._batch_kernel()
        if (
            kernel is None
            or len(pairs) < MIN_BATCH_SWAPS
            or not self._kernel_accepts_ids(kernel)
        ):
            return [self.peek(a, b).value for a, b in pairs]
        base = self._ids
        rows = []
        for a, b in pairs:
            row = list(base)
            row[a], row[b] = row[b], row[a]
            rows.append(row)
        self.evaluations += len(pairs)
        values = []
        for radii in kernel.batch_radii(rows, pre_validated=True):
            if self.objective == "max":
                values.append(float(max(radii)))
            elif self.objective == "sum":
                values.append(float(sum(radii)))
            else:
                values.append(sum(radii) / self.graph.n)
        return values

    def _batch_kernel(self):
        """The compiled batch instance, or ``None`` without a vectorised rule."""
        if self._kernel is _KERNEL_UNSET:
            from repro.kernel.compile import compile_instance

            instance = compile_instance(self.graph, self.algorithm, validate=False)
            self._kernel = instance if instance.vectorized else None
        return self._kernel

    def _kernel_accepts_ids(self, kernel) -> bool:
        """Whether the kernel backend can represent the current identifiers.

        The numpy backend gathers int64 arrays; assignments carrying
        identifiers beyond that range (perfectly legal for the runner path)
        quietly take the per-pair incremental gear instead.
        """
        from repro.kernel.compile import NUMPY_MAX_IDENTIFIER

        if kernel.backend != "numpy":
            return True
        return max(self._ids) <= NUMPY_MAX_IDENTIFIER

    def commit(self, delta: SwapDelta) -> float:
        """Apply a previously examined transposition and return the new value."""
        a, b = delta.position_a, delta.position_b
        self._ids[a], self._ids[b] = self._ids[b], self._ids[a]
        for v, radius, output in delta.changes:
            self._radii[v] = radius
            self._outputs[v] = output
        self._sum_radius = delta.sum_radius
        return delta.value

    def apply_swap(self, position_a: int, position_b: int) -> float:
        """Examine and immediately commit one transposition."""
        return self.commit(self.peek(position_a, position_b))
