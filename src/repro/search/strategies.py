"""Swap-based search strategies over a :class:`~repro.search.incremental.SwapEvaluator`.

Each strategy starts from the evaluator's current assignment, explores
transpositions with incremental re-simulation, and returns the best
assignment it has *seen* (not necessarily the one it ends on — annealing and
tabu search deliberately walk through worse states).  All strategies draw
every random choice from the supplied ``rng``, so a fixed seed makes a
strategy fully deterministic; the parallel portfolio relies on this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random

from repro.model.identifiers import random_assignment
from repro.search.incremental import SwapEvaluator


@dataclass(frozen=True)
class StrategyResult:
    """Best assignment found by one strategy run."""

    name: str
    value: float
    identifiers: tuple[int, ...]
    evaluations: int
    steps: int


def _sample_pair(rng: Random, n: int) -> tuple[int, int]:
    if n < 2:
        return 0, 0
    a = rng.randrange(n)
    b = rng.randrange(n - 1)
    if b >= a:
        b += 1
    return a, b


def hill_climb(
    evaluator: SwapEvaluator,
    rng: Random,
    swaps_per_step: int = 32,
    max_steps: int = 64,
) -> StrategyResult:
    """Best-improvement hill climbing over sampled transpositions.

    Each step examines ``swaps_per_step`` random pairs and commits the best
    strictly improving one; the climb stops at a local optimum or after
    ``max_steps`` steps.
    """
    before = evaluator.evaluations
    current = evaluator.value
    steps = 0
    for _ in range(max_steps):
        best_delta = None
        for _ in range(swaps_per_step):
            a, b = _sample_pair(rng, evaluator.graph.n)
            if a == b:
                continue
            delta = evaluator.peek(a, b)
            if delta.value > current and (
                best_delta is None or delta.value > best_delta.value
            ):
                best_delta = delta
        if best_delta is None:
            break
        current = evaluator.commit(best_delta)
        steps += 1
    return StrategyResult(
        name="hill-climb",
        value=current,
        identifiers=evaluator.identifiers,
        evaluations=evaluator.evaluations - before,
        steps=steps,
    )


def simulated_annealing(
    evaluator: SwapEvaluator,
    rng: Random,
    steps: int = 400,
    start_temperature: float = 1.0,
    end_temperature: float = 0.02,
) -> StrategyResult:
    """Metropolis walk over transpositions with a geometric cooling schedule.

    Worsening swaps are accepted with probability ``exp(delta / t)``, which
    lets the walk escape the local optima where pure hill climbing stalls;
    the best assignment seen anywhere along the walk is returned.
    """
    before = evaluator.evaluations
    current = evaluator.value
    best_value = current
    best_ids = evaluator.identifiers
    ratio = end_temperature / start_temperature
    for step in range(steps):
        temperature = start_temperature * ratio ** (step / max(1, steps - 1))
        a, b = _sample_pair(rng, evaluator.graph.n)
        if a == b:
            continue
        delta = evaluator.peek(a, b)
        gain = delta.value - current
        if gain >= 0 or rng.random() < math.exp(gain / temperature):
            current = evaluator.commit(delta)
            if current > best_value:
                best_value = current
                best_ids = evaluator.identifiers
    return StrategyResult(
        name="annealing",
        value=best_value,
        identifiers=best_ids,
        evaluations=evaluator.evaluations - before,
        steps=steps,
    )


def tabu_search(
    evaluator: SwapEvaluator,
    rng: Random,
    steps: int = 100,
    tenure: int = 8,
    sample: int = 24,
) -> StrategyResult:
    """Tabu search: always move to the best sampled neighbour, even downhill.

    A committed pair of positions becomes tabu for ``tenure`` steps (unless
    the move would beat the best value seen — the classic aspiration
    criterion), which stops the walk from immediately undoing itself.
    """
    before = evaluator.evaluations
    current = evaluator.value
    best_value = current
    best_ids = evaluator.identifiers
    tabu_until: dict[tuple[int, int], int] = {}
    for step in range(steps):
        best_delta = None
        for _ in range(sample):
            a, b = _sample_pair(rng, evaluator.graph.n)
            if a == b:
                continue
            pair = (min(a, b), max(a, b))
            delta = evaluator.peek(a, b)
            if tabu_until.get(pair, -1) > step and delta.value <= best_value:
                continue  # tabu, and aspiration does not apply
            if best_delta is None or delta.value > best_delta.value:
                best_delta = delta
        if best_delta is None:
            continue
        current = evaluator.commit(best_delta)
        pair = (
            min(best_delta.position_a, best_delta.position_b),
            max(best_delta.position_a, best_delta.position_b),
        )
        tabu_until[pair] = step + tenure
        if current > best_value:
            best_value = current
            best_ids = evaluator.identifiers
    return StrategyResult(
        name="tabu",
        value=best_value,
        identifiers=best_ids,
        evaluations=evaluator.evaluations - before,
        steps=steps,
    )


def random_probe(
    evaluator: SwapEvaluator,
    rng: Random,
    samples: int = 16,
) -> StrategyResult:
    """Full restarts from uniformly random assignments (the baseline).

    Unlike the swap strategies this pays a full (engine-accelerated) run per
    sample; it is kept in the portfolio as a diversification backstop.
    """
    before = evaluator.evaluations
    best_value = evaluator.value
    best_ids = evaluator.identifiers
    n = evaluator.graph.n
    for _ in range(samples):
        value = evaluator.reset(random_assignment(n, seed=rng.getrandbits(64)))
        if value > best_value:
            best_value = value
            best_ids = evaluator.identifiers
    return StrategyResult(
        name="random-probe",
        value=best_value,
        identifiers=best_ids,
        evaluations=evaluator.evaluations - before,
        steps=samples,
    )
