"""Swap-based search strategies over a :class:`~repro.search.incremental.SwapEvaluator`.

Each strategy starts from the evaluator's current assignment, explores
transpositions with incremental re-simulation, and returns the best
assignment it has *seen* (not necessarily the one it ends on — annealing and
tabu search deliberately walk through worse states).  All strategies draw
every random choice from the supplied ``rng``, so a fixed seed makes a
strategy fully deterministic; the parallel portfolio relies on this.

The population-based strategies — hill climbing and tabu search, which
examine a whole *sample* of candidate swaps per step — score that sample
through :meth:`~repro.search.incremental.SwapEvaluator.peek_values_batch`
(one kernel batch per step for vectorised algorithms) and only run the
incremental :meth:`~repro.search.incremental.SwapEvaluator.peek` for the
single swap they commit — that re-examination of the winner costs one
extra evaluation per improving step relative to the pre-batch code, and is
counted in ``evaluations`` like any other examination.  Batch scoring is
value-identical to peeking each pair, so trajectories do not depend on
which gear runs.  Annealing examines one swap per step (the acceptance
test needs the current state), so it keeps the purely incremental path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random

from repro.model.identifiers import random_assignment
from repro.search.incremental import SwapEvaluator


@dataclass(frozen=True)
class StrategyResult:
    """Best assignment found by one strategy run."""

    name: str
    value: float
    identifiers: tuple[int, ...]
    evaluations: int
    steps: int


def _sample_pair(rng: Random, n: int) -> tuple[int, int]:
    if n < 2:
        return 0, 0
    a = rng.randrange(n)
    b = rng.randrange(n - 1)
    if b >= a:
        b += 1
    return a, b


def hill_climb(
    evaluator: SwapEvaluator,
    rng: Random,
    swaps_per_step: int = 32,
    max_steps: int = 64,
) -> StrategyResult:
    """Best-improvement hill climbing over sampled transpositions.

    Each step examines ``swaps_per_step`` random pairs and commits the best
    strictly improving one; the climb stops at a local optimum or after
    ``max_steps`` steps.
    """
    before = evaluator.evaluations
    current = evaluator.value
    steps = 0
    for _ in range(max_steps):
        pairs = []
        for _ in range(swaps_per_step):
            a, b = _sample_pair(rng, evaluator.graph.n)
            if a == b:
                continue
            pairs.append((a, b))
        best_pair = None
        best_value = current
        for pair, value in zip(pairs, evaluator.peek_values_batch(pairs)):
            if value > best_value:
                best_pair = pair
                best_value = value
        if best_pair is None:
            break
        current = evaluator.commit(evaluator.peek(*best_pair))
        steps += 1
    return StrategyResult(
        name="hill-climb",
        value=current,
        identifiers=evaluator.identifiers,
        evaluations=evaluator.evaluations - before,
        steps=steps,
    )


def simulated_annealing(
    evaluator: SwapEvaluator,
    rng: Random,
    steps: int = 400,
    start_temperature: float = 1.0,
    end_temperature: float = 0.02,
) -> StrategyResult:
    """Metropolis walk over transpositions with a geometric cooling schedule.

    Worsening swaps are accepted with probability ``exp(delta / t)``, which
    lets the walk escape the local optima where pure hill climbing stalls;
    the best assignment seen anywhere along the walk is returned.
    """
    before = evaluator.evaluations
    current = evaluator.value
    best_value = current
    best_ids = evaluator.identifiers
    ratio = end_temperature / start_temperature
    for step in range(steps):
        temperature = start_temperature * ratio ** (step / max(1, steps - 1))
        a, b = _sample_pair(rng, evaluator.graph.n)
        if a == b:
            continue
        delta = evaluator.peek(a, b)
        gain = delta.value - current
        if gain >= 0 or rng.random() < math.exp(gain / temperature):
            current = evaluator.commit(delta)
            if current > best_value:
                best_value = current
                best_ids = evaluator.identifiers
    return StrategyResult(
        name="annealing",
        value=best_value,
        identifiers=best_ids,
        evaluations=evaluator.evaluations - before,
        steps=steps,
    )


def tabu_search(
    evaluator: SwapEvaluator,
    rng: Random,
    steps: int = 100,
    tenure: int = 8,
    sample: int = 24,
) -> StrategyResult:
    """Tabu search: always move to the best sampled neighbour, even downhill.

    A committed pair of positions becomes tabu for ``tenure`` steps (unless
    the move would beat the best value seen — the classic aspiration
    criterion), which stops the walk from immediately undoing itself.
    """
    before = evaluator.evaluations
    current = evaluator.value
    best_value = current
    best_ids = evaluator.identifiers
    tabu_until: dict[tuple[int, int], int] = {}
    for step in range(steps):
        pairs = []
        for _ in range(sample):
            a, b = _sample_pair(rng, evaluator.graph.n)
            if a == b:
                continue
            pairs.append((a, b))
        best_pair = None
        best_pair_value = None
        for (a, b), value in zip(pairs, evaluator.peek_values_batch(pairs)):
            pair = (min(a, b), max(a, b))
            if tabu_until.get(pair, -1) > step and value <= best_value:
                continue  # tabu, and aspiration does not apply
            if best_pair is None or value > best_pair_value:
                best_pair = (a, b)
                best_pair_value = value
        if best_pair is None:
            continue
        current = evaluator.commit(evaluator.peek(*best_pair))
        pair = (min(best_pair), max(best_pair))
        tabu_until[pair] = step + tenure
        if current > best_value:
            best_value = current
            best_ids = evaluator.identifiers
    return StrategyResult(
        name="tabu",
        value=best_value,
        identifiers=best_ids,
        evaluations=evaluator.evaluations - before,
        steps=steps,
    )


def random_probe(
    evaluator: SwapEvaluator,
    rng: Random,
    samples: int = 16,
) -> StrategyResult:
    """Full restarts from uniformly random assignments (the baseline).

    Unlike the swap strategies this pays a full (engine-accelerated) run per
    sample; it is kept in the portfolio as a diversification backstop.
    """
    before = evaluator.evaluations
    best_value = evaluator.value
    best_ids = evaluator.identifiers
    n = evaluator.graph.n
    for _ in range(samples):
        value = evaluator.reset(random_assignment(n, seed=rng.getrandbits(64)))
        if value > best_value:
            best_value = value
            best_ids = evaluator.identifiers
    return StrategyResult(
        name="random-probe",
        value=best_value,
        identifiers=best_ids,
        evaluations=evaluator.evaluations - before,
        steps=samples,
    )
