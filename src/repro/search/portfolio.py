"""A deterministic parallel portfolio of search strategies.

No single heuristic dominates across topologies and algorithms: hill
climbing converges fastest on smooth landscapes, annealing and tabu escape
the plateaus of structured instances, and random probing is a safety net on
tiny or degenerate ones.  :class:`PortfolioSearch` runs a configurable set
of strategies — each with its own deterministically derived seed and
starting assignment — through the engine's
:class:`~repro.engine.batch.BatchExecutor`, and returns the best witness
found together with per-strategy statistics.

Determinism: strategy seeds come from
:func:`~repro.engine.batch.derive_task_seed` keyed by the portfolio seed and
the strategy's name and index, so results are bit-identical at any worker
count (the executor preserves submission order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random
from typing import TYPE_CHECKING, Optional, Sequence

from repro.engine.batch import BatchExecutor, derive_task_seed
from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.model.identifiers import random_assignment
from repro.search.incremental import SwapEvaluator
from repro.search.strategies import (
    StrategyResult,
    hill_climb,
    random_probe,
    simulated_annealing,
    tabu_search,
)

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.algorithm import BallAlgorithm

#: Strategy name -> callable(evaluator, rng, **params).
STRATEGY_FUNCTIONS = {
    "hill-climb": hill_climb,
    "annealing": simulated_annealing,
    "tabu": tabu_search,
    "random-probe": random_probe,
}


@dataclass(frozen=True)
class StrategySpec:
    """One portfolio member: a strategy name plus its keyword parameters."""

    name: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.name not in STRATEGY_FUNCTIONS:
            raise ConfigurationError(
                f"unknown strategy {self.name!r}; known: {sorted(STRATEGY_FUNCTIONS)}"
            )

    @classmethod
    def make(cls, name: str, **params: object) -> "StrategySpec":
        """Build a spec from keyword parameters."""
        return cls(name=name, params=tuple(sorted(params.items())))


def default_portfolio() -> tuple[StrategySpec, ...]:
    """The standard four-member portfolio (one member per strategy family)."""
    return (
        StrategySpec.make("hill-climb", swaps_per_step=24, max_steps=48),
        StrategySpec.make("annealing", steps=300),
        StrategySpec.make("tabu", steps=80, sample=16),
        StrategySpec.make("random-probe", samples=12),
    )


@dataclass(frozen=True)
class PortfolioCertificate:
    """Per-strategy outcome summary attached to a portfolio result.

    Portfolio results are **lower-bound witnesses**, not exact optima: each
    row records what one strategy achieved so regressions and strategy
    dominance are visible in sweeps.
    """

    rows: tuple[dict, ...] = field(default_factory=tuple)

    def as_dict(self) -> dict:
        """JSON-friendly form (campaign rows, benchmark artifacts)."""
        return {"exact": False, "strategies": list(self.rows)}


def run_strategy(
    payload: tuple[Graph, "BallAlgorithm", str, StrategySpec, int],
) -> StrategyResult:
    """Worker: run one strategy from a deterministic random start."""
    graph, algorithm, objective, spec, seed = payload
    rng = Random(seed)
    start = random_assignment(graph.n, seed=rng.getrandbits(64))
    evaluator = SwapEvaluator(graph, algorithm, objective=objective, ids=start)
    function = STRATEGY_FUNCTIONS[spec.name]
    return function(evaluator, rng, **dict(spec.params))


class PortfolioSearch:
    """Race independent strategies and keep the best certified witness.

    Parameters
    ----------
    strategies:
        Portfolio members; defaults to :func:`default_portfolio`.
    seed:
        Base seed from which every member's private seed is derived.
    workers:
        Worker processes for the fan-out (1 = in-process, the default).
    """

    def __init__(
        self,
        strategies: Optional[Sequence[StrategySpec]] = None,
        seed: int = 0,
        workers: Optional[int] = 1,
    ) -> None:
        if strategies is None:
            strategies = default_portfolio()
        self.strategies = tuple(strategies)
        if not self.strategies:
            raise ConfigurationError("a portfolio needs at least one strategy")
        self.seed = seed
        self.workers = workers

    def run(
        self, graph: Graph, algorithm: "BallAlgorithm", objective: str = "average"
    ) -> tuple[StrategyResult, PortfolioCertificate]:
        """Run every member and return (best result, per-strategy certificate)."""
        payloads = [
            (
                graph,
                algorithm,
                objective,
                spec,
                derive_task_seed(self.seed, spec.name, index),
            )
            for index, spec in enumerate(self.strategies)
        ]
        results = BatchExecutor(self.workers).map(run_strategy, payloads)
        best = max(results, key=lambda result: result.value)
        certificate = PortfolioCertificate(
            rows=tuple(
                {
                    "strategy": result.name,
                    "value": result.value,
                    "evaluations": result.evaluations,
                    "steps": result.steps,
                }
                for result in results
            )
        )
        return best, certificate
