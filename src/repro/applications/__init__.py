"""Applications sketched in the paper's introduction.

The paper motivates the average measure with two scenarios:

* **Dynamic networks** (:mod:`repro.applications.dynamic_networks`): after a
  change at a random node, only the nodes whose view contained the changed
  node must recompute, so the expected repair cost is governed by the
  average radius rather than the worst-case radius.
* **Parallel simulation** (:mod:`repro.applications.parallel_sim`): when a
  pool of processors simulates the nodes of a distributed algorithm, a node
  that outputs early frees its processor for another node, so the makespan
  is governed by the *sum* (equivalently the average) of the radii.
"""

from repro.applications.dynamic_networks import (
    DynamicRepairSimulator,
    RepairReport,
    expected_repair_cost,
)
from repro.applications.parallel_sim import (
    ScheduleResult,
    list_schedule,
    simulation_speedup,
)

__all__ = [
    "DynamicRepairSimulator",
    "RepairReport",
    "ScheduleResult",
    "expected_repair_cost",
    "list_schedule",
    "simulation_speedup",
]
