"""Label repair in dynamic networks.

The paper remarks that "the average time to update the labels of the graph
after a change at a random node, can be estimated using the average
measure".  The model implemented here makes that estimate concrete:

* run a ball-based algorithm once to obtain every node's output and radius;
* change the identifier of one node (the "churn event");
* a node must recompute exactly when the changed node lies inside the ball
  it had used (or inside the ball it now needs) — everyone else's view, and
  hence output, is untouched.

The *repair cost* of a change is the number of nodes that must recompute
(total work) and the largest radius among them (repair latency).  Averaged
over a uniformly random changed node, the total work equals
``(1/n) * sum_v |B(v, r(v))|``, which on a cycle is ``2 * average_radius + 1``
— exactly the paper's claim that the average measure is the right estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.algorithm import BallAlgorithm
from repro.core.runner import run_ball_algorithm
from repro.errors import ConfigurationError, IdentifierError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace
from repro.utils.rng import SeedLike, make_rng


@dataclass(frozen=True)
class RepairReport:
    """Cost of repairing the labelling after one identifier change."""

    changed_position: int
    old_identifier: int
    new_identifier: int
    affected_positions: tuple[int, ...]
    repair_latency: int
    total_work: int

    @property
    def affected_count(self) -> int:
        """Number of nodes that had to recompute their output."""
        return len(self.affected_positions)


class DynamicRepairSimulator:
    """Maintains outputs of a ball algorithm under single-node identifier churn."""

    def __init__(
        self, graph: Graph, ids: IdentifierAssignment, algorithm: BallAlgorithm
    ) -> None:
        self.graph = graph
        self.algorithm = algorithm
        self.ids = ids
        self.trace: ExecutionTrace = run_ball_algorithm(graph, ids, algorithm)

    def affected_by_change(self, position: int, trace: ExecutionTrace | None = None) -> list[int]:
        """Positions whose used ball contains ``position`` (they must recompute)."""
        reference = trace if trace is not None else self.trace
        radii = reference.radii()
        affected = []
        for v in self.graph.positions():
            if self.graph.distance(v, position) <= radii[v]:
                affected.append(v)
        return affected

    def apply_change(self, position: int, new_identifier: int) -> RepairReport:
        """Change one node's identifier, recompute, and report the repair cost.

        The new identifier must not collide with any existing identifier
        (other than the one being replaced).
        """
        if not 0 <= position < self.graph.n:
            raise ConfigurationError(f"position {position} outside 0..{self.graph.n - 1}")
        old_identifier = self.ids[position]
        others = set(self.ids.identifiers()) - {old_identifier}
        if new_identifier in others:
            raise IdentifierError(
                f"identifier {new_identifier} is already used elsewhere in the graph"
            )
        before = self.trace
        new_ids = list(self.ids.identifiers())
        new_ids[position] = new_identifier
        self.ids = IdentifierAssignment(new_ids)
        self.trace = run_ball_algorithm(self.graph, self.ids, self.algorithm)
        # A node must recompute if the changed node was in the ball it had
        # used before the change, or is in the ball it needs afterwards.
        affected = sorted(
            set(self.affected_by_change(position, before))
            | set(self.affected_by_change(position, self.trace))
        )
        radii_after = self.trace.radii()
        latency = max((radii_after[v] for v in affected), default=0)
        return RepairReport(
            changed_position=position,
            old_identifier=old_identifier,
            new_identifier=new_identifier,
            affected_positions=tuple(affected),
            repair_latency=latency,
            total_work=len(affected),
        )

    def random_churn(self, events: int, seed: SeedLike = None) -> list[RepairReport]:
        """Apply ``events`` successive changes at uniformly random positions.

        Each event assigns a fresh identifier strictly above every identifier
        currently in use, which keeps identifiers distinct without renaming
        other nodes.
        """
        rng = make_rng(seed)
        reports = []
        for _ in range(events):
            position = rng.randrange(self.graph.n)
            new_identifier = max(self.ids.identifiers()) + 1
            reports.append(self.apply_change(position, new_identifier))
        return reports


def expected_repair_cost(trace: ExecutionTrace, graph: Graph) -> float:
    """Expected recomputation work for a change at a uniformly random node.

    Equals ``(1/n) * sum_v |B(v, r(v))|``: node ``v`` recomputes whenever the
    changed node falls inside the ball it used, which happens with
    probability ``|B(v, r(v))| / n``.
    """
    radii = trace.radii()
    total = sum(len(graph.ball_positions(v, radii[v])) for v in graph.positions())
    return total / graph.n


def average_repair_cost(reports: Iterable[RepairReport]) -> float:
    """Mean total work over a sequence of observed repair reports."""
    reports = list(reports)
    if not reports:
        raise ConfigurationError("average_repair_cost needs at least one report")
    return sum(report.total_work for report in reports) / len(reports)
