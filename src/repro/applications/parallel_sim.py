"""Parallel simulation of distributed computations.

The paper's second motivating application: a pool of ``p`` processors
simulates the ``n`` nodes of a LOCAL algorithm, one node-job per node, where
the job of node ``v`` takes ``r(v)`` time units (the node can be retired as
soon as it outputs).  A scheduler that reuses processors freed by
early-finishing jobs achieves a makespan close to ``sum_v r(v) / p``, i.e.
it is governed by the *average* radius; a naive scheduler that reserves each
processor for the worst case pays ``ceil(n/p) * max_v r(v)`` instead.

:func:`list_schedule` implements the classic greedy list scheduler (assign
the next job to the earliest-available processor), whose makespan is within
a factor two of optimal, and :func:`simulation_speedup` reports the ratio
between the naive and the greedy makespans for a given execution trace.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.errors import ConfigurationError
from repro.model.graph import Graph
from repro.model.identifiers import IdentifierAssignment
from repro.model.trace import ExecutionTrace
from repro.utils.validation import require_positive_int

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.algorithm import BallAlgorithm


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling node-jobs on a processor pool."""

    processors: int
    makespan: float
    durations: tuple[float, ...]
    finish_times: tuple[float, ...]
    assignment: tuple[int, ...]

    @property
    def total_work(self) -> float:
        """Sum of job durations (independent of the schedule)."""
        return float(sum(self.durations))

    @property
    def utilisation(self) -> float:
        """Fraction of processor time spent doing useful work."""
        if self.makespan == 0:
            return 1.0
        return self.total_work / (self.processors * self.makespan)


def list_schedule(
    durations: Sequence[float],
    processors: int,
    longest_first: bool = False,
) -> ScheduleResult:
    """Greedy list scheduling of independent jobs on identical processors.

    Parameters
    ----------
    durations:
        One duration per job (the radii of an execution trace).
    processors:
        Number of identical processors.
    longest_first:
        Sort jobs by decreasing duration first (the LPT heuristic), which
        tightens the makespan; the default keeps the submission order, which
        models a simulator that discovers radii only as nodes stop.
    """
    require_positive_int(processors, "processors")
    if not durations:
        raise ConfigurationError("list_schedule needs at least one job")
    if any(duration < 0 for duration in durations):
        raise ConfigurationError("job durations must be non-negative")
    order = list(range(len(durations)))
    if longest_first:
        order.sort(key=lambda job: durations[job], reverse=True)
    # Priority queue of (available_time, processor_index).
    pool = [(0.0, processor) for processor in range(processors)]
    heapq.heapify(pool)
    finish_times = [0.0] * len(durations)
    assignment = [0] * len(durations)
    for job in order:
        available_time, processor = heapq.heappop(pool)
        finish = available_time + float(durations[job])
        finish_times[job] = finish
        assignment[job] = processor
        heapq.heappush(pool, (finish, processor))
    makespan = max(finish_times)
    return ScheduleResult(
        processors=processors,
        makespan=makespan,
        durations=tuple(float(duration) for duration in durations),
        finish_times=tuple(finish_times),
        assignment=tuple(assignment),
    )


def naive_makespan(durations: Sequence[float], processors: int) -> float:
    """Makespan of the lock-step simulator that reserves the worst case.

    Every batch of ``processors`` jobs runs for the *maximum* duration, as a
    simulator must when it cannot exploit early-stopping nodes; the makespan
    is therefore ``ceil(n / p) * max duration``.
    """
    require_positive_int(processors, "processors")
    if not durations:
        raise ConfigurationError("naive_makespan needs at least one job")
    batches = math.ceil(len(durations) / processors)
    return batches * float(max(durations))


def simulation_speedup(trace: ExecutionTrace, processors: int) -> float:
    """Ratio naive / greedy makespan for the radii of one execution trace.

    Radii of 0 are simulated as jobs of one time unit (a node that outputs
    immediately still has to be looked at once).
    """
    durations = [max(1, radius) for radius in trace.radii().values()]
    greedy = list_schedule(durations, processors).makespan
    naive = naive_makespan(durations, processors)
    if greedy == 0:
        return math.inf
    return naive / greedy


def simulate_and_schedule(
    graph: Graph,
    ids: IdentifierAssignment,
    algorithm: "BallAlgorithm",
    processors: int,
    runner: Optional[FrontierRunner] = None,
    longest_first: bool = False,
) -> tuple[ExecutionTrace, ScheduleResult, float]:
    """Run the algorithm through the engine and schedule its node-jobs.

    The end-to-end version of the paper's application: execute the LOCAL
    algorithm (via the engine's fast path), turn the per-node radii into
    jobs, list-schedule them on ``processors`` processors, and report
    ``(trace, greedy schedule, naive/greedy speedup)``.

    Pass an existing :class:`~repro.engine.frontier.FrontierRunner` to share
    its session (precomputation and decision cache) across several
    assignments of the same instance.
    """
    if runner is None:
        runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
    trace = runner.run(ids)
    durations = [max(1, radius) for radius in trace.radii().values()]
    schedule = list_schedule(durations, processors, longest_first=longest_first)
    naive = naive_makespan(durations, processors)
    speedup = math.inf if schedule.makespan == 0 else naive / schedule.makespan
    return trace, schedule, speedup
