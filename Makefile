PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test docs bench bench-floors bench-trend bench-smoke sweep-smoke serve examples clean

## tier-1 test suite (tests + benchmarks), exactly as CI runs it
test:
	$(PYTHON) -m pytest -x -q

## build the documentation site into docs/_build, failing on any warning
docs:
	$(PYTHON) scripts/build_docs.py --strict

## the speedup benchmarks with their JSON artifacts, plus the micro suite
bench:
	REPRO_BENCH_WRITE=1 $(PYTHON) -m pytest -q benchmarks/test_bench_engine.py benchmarks/test_bench_search.py benchmarks/test_bench_dist.py benchmarks/test_bench_api.py benchmarks/test_bench_kernel.py benchmarks/test_bench_obs.py benchmarks/test_bench_scale.py benchmarks/test_bench_parallel.py benchmarks/test_bench_serve.py benchmarks/test_bench_micro.py

## assert every committed BENCH_*.json speedup still meets its floor
bench-floors:
	$(PYTHON) scripts/check_bench_floors.py

## speedup trajectories over the BENCH_*.json git history, with headroom
bench-trend:
	$(PYTHON) scripts/bench_trend.py

## every benchmark in fast smoke mode (reduced sizes, same assertions and
## JSON artifacts), so BENCH_*.json regressions surface on PRs
bench-smoke:
	REPRO_BENCH_SMOKE=1 REPRO_BENCH_WRITE=1 $(PYTHON) -m pytest -q benchmarks

## run the HTTP query service on its default port (guide: docs/service.md)
serve:
	$(PYTHON) -m repro serve --port 8000 --store repro-store

## a tiny end-to-end sweep through the campaign CLI
sweep-smoke:
	$(PYTHON) -m repro sweep --topologies cycle --sizes 8 \
		--algorithms largest-id --adversaries branch-and-bound --seed 3

## run every documented example end to end at reduced sizes (the CI smoke job)
examples:
	@set -e; for script in examples/*.py; do \
		echo "== $$script"; \
		REPRO_EXAMPLES_SMALL=1 $(PYTHON) $$script > /dev/null; \
	done; echo "all examples ok"

clean:
	rm -rf docs/_build .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
