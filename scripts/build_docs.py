#!/usr/bin/env python
"""Build the documentation site into ``docs/_build/``.

A dependency-free documentation builder (the container intentionally ships
no Sphinx): it imports every module under ``src/repro``, generates one API
reference page per module from the live docstrings and signatures, copies
the hand-written guides from ``docs/``, cross-checks internal links, and
renders everything to HTML.

The build is **strict about its warnings** — a missing module docstring, an
undocumented public class or function, a guide link that resolves nowhere,
or a module that would be silently absent from the API reference each count
as a warning, and ``--strict`` (used by ``make docs`` and CI) turns any
warning into a non-zero exit.  That is the "zero warnings" contract of the
docs acceptance criteria.

Usage::

    PYTHONPATH=src python scripts/build_docs.py --strict
    PYTHONPATH=src python scripts/build_docs.py --out /tmp/site
"""

from __future__ import annotations

import argparse
import html
import importlib
import inspect
import pkgutil
import re
import shutil
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
SRC_DIR = REPO_ROOT / "src"

#: Hand-written guide pages (order = site navigation order).
GUIDE_PAGES = (
    "index.md",
    "architecture.md",
    "api.md",
    "tutorial-measures.md",
    "adversary-search.md",
    "distributions.md",
    "performance.md",
    "observability.md",
    "service.md",
)


class Warnings:
    """Collect build warnings; strict mode turns them into a failed exit."""

    def __init__(self) -> None:
        self.messages: list[str] = []

    def add(self, message: str) -> None:
        self.messages.append(message)
        print(f"WARNING: {message}", file=sys.stderr)

    def __len__(self) -> int:
        return len(self.messages)


# ----------------------------------------------------------------------
# module discovery and API page generation
# ----------------------------------------------------------------------
def discover_modules() -> list[str]:
    """Every importable module under ``src/repro``, sorted by dotted name."""
    package = importlib.import_module("repro")
    names = {"repro"}
    for info in pkgutil.walk_packages(package.__path__, prefix="repro."):
        names.add(info.name)
    return sorted(names)


def public_members(module) -> list[tuple[str, object]]:
    """Module-level public classes and functions defined *by* this module."""
    members = []
    for name in sorted(vars(module)):
        if name.startswith("_"):
            continue
        obj = vars(module)[name]
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        members.append((name, obj))
    return members


def _signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def render_api_page(module_name: str, warnings: Warnings) -> str:
    """Markdown API page for one module, generated from live docstrings."""
    module = importlib.import_module(module_name)
    lines = [f"# `{module_name}`", ""]
    doc = inspect.getdoc(module)
    if doc:
        lines += [doc, ""]
    else:
        warnings.add(f"{module_name}: missing module docstring")
    members = public_members(module)
    if members:
        lines += ["## API", ""]
    for name, obj in members:
        kind = "class" if inspect.isclass(obj) else "function"
        lines += [f"### {kind} `{name}{_signature_of(obj)}`", ""]
        member_doc = inspect.getdoc(obj)
        if member_doc:
            lines += [member_doc, ""]
        else:
            warnings.add(f"{module_name}.{name}: missing docstring")
        if inspect.isclass(obj):
            for method_name, method in sorted(vars(obj).items()):
                if method_name.startswith("_"):
                    continue
                if not (
                    inspect.isfunction(method)
                    or isinstance(method, (classmethod, staticmethod, property))
                ):
                    continue
                unwrapped = (
                    method.fget
                    if isinstance(method, property)
                    else getattr(method, "__func__", method)
                )
                method_doc = inspect.getdoc(unwrapped)
                summary = (
                    method_doc.strip().splitlines()[0]
                    if method_doc
                    else "(undocumented)"
                )
                if isinstance(method, property):
                    lines.append(f"- `{method_name}` *(property)* — {summary}")
                else:
                    lines.append(
                        f"- `{method_name}{_signature_of(unwrapped)}` — {summary}"
                    )
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_api_index(module_names: list[str]) -> str:
    """The API reference landing page: one line per module."""
    lines = [
        "# API reference",
        "",
        "One page per module under `src/repro`, generated from the live",
        "docstrings by `scripts/build_docs.py`.",
        "",
    ]
    for name in module_names:
        module = importlib.import_module(name)
        doc = inspect.getdoc(module) or ""
        summary = doc.strip().splitlines()[0] if doc else ""
        lines.append(f"- [`{name}`]({name}.md) — {summary}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# guide pages and link checking
# ----------------------------------------------------------------------
_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(#[^)\s]*)?\)")


def check_links(page: str, text: str, out_dir: Path, warnings: Warnings) -> None:
    """Every relative link in a guide must resolve inside the built site."""
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if not (out_dir / target).exists():
            warnings.add(f"{page}: broken link -> {target}")


# ----------------------------------------------------------------------
# minimal markdown -> HTML rendering
# ----------------------------------------------------------------------
_STYLE = """
body { max-width: 56rem; margin: 2rem auto; padding: 0 1rem;
       font: 16px/1.6 system-ui, sans-serif; color: #1a1a1a; }
pre { background: #f6f8fa; padding: .8rem; overflow-x: auto; border-radius: 6px; }
code { background: #f6f8fa; padding: .1rem .3rem; border-radius: 4px;
       font-size: .92em; }
pre code { padding: 0; }
table { border-collapse: collapse; }
td, th { border: 1px solid #d0d7de; padding: .3rem .6rem; }
a { color: #0a58ca; }
h1, h2, h3 { line-height: 1.25; }
""".strip()


def _inline(text: str) -> str:
    text = html.escape(text, quote=False)
    text = re.sub(r"`([^`]+)`", r"<code>\1</code>", text)
    text = re.sub(
        r"\[([^\]]+)\]\(([^)\s]+)\)",
        lambda m: f'<a href="{m.group(2).replace(".md", ".html")}">{m.group(1)}</a>',
        text,
    )
    text = re.sub(r"\*\*([^*]+)\*\*", r"<strong>\1</strong>", text)
    return text


def markdown_to_html(text: str, title: str) -> str:
    """A small, predictable subset of markdown, enough for this site."""
    out: list[str] = []
    lines = text.splitlines()
    index = 0
    in_list = False
    while index < len(lines):
        line = lines[index]
        if line.startswith("```"):
            if in_list:
                out.append("</ul>")
                in_list = False
            block: list[str] = []
            index += 1
            while index < len(lines) and not lines[index].startswith("```"):
                block.append(lines[index])
                index += 1
            out.append("<pre><code>" + html.escape("\n".join(block)) + "</code></pre>")
            index += 1
            continue
        if line.startswith("|") and index + 1 < len(lines) and set(
            lines[index + 1].replace("|", "").strip()
        ) <= {"-", ":", " "} and lines[index + 1].startswith("|"):
            if in_list:
                out.append("</ul>")
                in_list = False
            header = [cell.strip() for cell in line.strip("|").split("|")]
            out.append("<table><tr>" + "".join(f"<th>{_inline(c)}</th>" for c in header) + "</tr>")
            index += 2
            while index < len(lines) and lines[index].startswith("|"):
                row = [cell.strip() for cell in lines[index].strip("|").split("|")]
                out.append("<tr>" + "".join(f"<td>{_inline(c)}</td>" for c in row) + "</tr>")
                index += 1
            out.append("</table>")
            continue
        if line.startswith("- "):
            if not in_list:
                out.append("<ul>")
                in_list = True
            out.append(f"<li>{_inline(line[2:])}</li>")
            index += 1
            continue
        if in_list:
            out.append("</ul>")
            in_list = False
        heading = re.match(r"(#{1,4}) (.*)", line)
        if heading:
            level = len(heading.group(1))
            out.append(f"<h{level}>{_inline(heading.group(2))}</h{level}>")
        elif line.strip():
            out.append(f"<p>{_inline(line)}</p>")
        index += 1
    if in_list:
        out.append("</ul>")
    body = "\n".join(out)
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{html.escape(title)}</title><style>{_STYLE}</style></head>"
        f"<body>{body}</body></html>\n"
    )


# ----------------------------------------------------------------------
# build driver
# ----------------------------------------------------------------------
def build(out_dir: Path, warnings: Warnings) -> dict:
    """Build the whole site; returns a small summary dict."""
    if out_dir.exists():
        shutil.rmtree(out_dir)
    (out_dir / "api").mkdir(parents=True)

    module_names = discover_modules()
    for name in module_names:
        page = render_api_page(name, warnings)
        (out_dir / "api" / f"{name}.md").write_text(page, encoding="utf-8")
    (out_dir / "api" / "index.md").write_text(
        render_api_index(module_names), encoding="utf-8"
    )

    for page in GUIDE_PAGES:
        source = DOCS_DIR / page
        if not source.exists():
            warnings.add(f"missing guide page docs/{page}")
            continue
        shutil.copyfile(source, out_dir / page)
    for page in GUIDE_PAGES:
        target = out_dir / page
        if target.exists():
            check_links(page, target.read_text(encoding="utf-8"), out_dir, warnings)

    # Coverage: every module under src/repro must have an API page.
    missing = [
        name
        for name in module_names
        if not (out_dir / "api" / f"{name}.md").exists()
    ]
    for name in missing:
        warnings.add(f"API reference is missing a page for {name}")

    markdown_pages = sorted(out_dir.rglob("*.md"))
    for markdown_path in markdown_pages:
        text = markdown_path.read_text(encoding="utf-8")
        first_heading = next(
            (l[2:] for l in text.splitlines() if l.startswith("# ")),
            markdown_path.stem,
        )
        html_path = markdown_path.with_suffix(".html")
        html_path.write_text(markdown_to_html(text, first_heading), encoding="utf-8")

    return {
        "modules": len(module_names),
        "pages": len(markdown_pages),
        "warnings": len(warnings),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(DOCS_DIR / "_build"),
        help="output directory (default: docs/_build)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero if the build produced any warning",
    )
    args = parser.parse_args(argv)
    warnings = Warnings()
    summary = build(Path(args.out), warnings)
    print(
        f"docs: {summary['modules']} modules, {summary['pages']} markdown pages, "
        f"{summary['warnings']} warnings -> {args.out}"
    )
    if args.strict and warnings.messages:
        print(f"strict mode: failing on {len(warnings)} warning(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(SRC_DIR))
    raise SystemExit(main())
