"""Regenerate ``EXPERIMENTS.md`` from a full run of the experiment suite.

The paper is a brief announcement without tables or figures, so the
reproduction's "paper vs. measured" record is built from its quantitative
claims (the experiment index lives in ``DESIGN.md``).  This script runs every
experiment at the benchmark sizes and writes one section per experiment:
the claim, what the paper predicts, the measured table, and the shape checks
that passed.

Sweep campaigns produced by ``repro sweep --output rows.json`` (or
:func:`repro.engine.campaign.run_campaign` + ``write_rows``) can be appended
as an extra section with ``--campaign rows.json``.

Usage:  python scripts/generate_experiments_md.py [output-path] [--campaign rows.json]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.engine.campaign import load_rows

from repro.experiments import (
    characterization,
    coloring,
    distributions,
    dynamic,
    general_graphs,
    largest_id,
    lower_bound,
    parallel,
    random_ids,
    recurrence,
    regularity,
    search_strategies,
    simulators,
)

HEADER = """\
# EXPERIMENTS — paper vs. measured

Reproduction of Feuilloley, *Brief Announcement: Average Complexity for the
LOCAL Model* (PODC 2015).  The paper contains **no tables or figures**; its
evaluation is a set of quantitative claims.  ``DESIGN.md`` maps each claim to
an experiment (E1-E13); this file records, for every experiment, what the
paper predicts and what this implementation measures.  Absolute constants are
not specified by a brief announcement, so the reproduction target is the
*shape* of each result (growth rates, who wins, where the bounds sit), and
every experiment embeds shape checks that fail the benchmark run if the
claim stops holding.

Regenerate with ``python scripts/generate_experiments_md.py`` or re-run the
underlying sweeps with ``pytest benchmarks/ --benchmark-only``.

A note on one substitution: the paper points out that 3-colouring the ring in
``O(log* n)`` rounds is possible *without knowledge of n* (Korman–Sereni–
Viennot / Musto).  The upper-bound algorithm used here is the classic
known-``n`` Cole–Vishkin algorithm.  This does not affect either of the
paper's results: the largest-ID analysis (Section 2) never uses ``n``, and
Theorem 1 is a lower bound over *all* algorithms, with or without knowledge
of ``n``; the upper bound only serves to show the lower bound is tight, and
Cole–Vishkin's radius profile (every node stops at the same ``Theta(log* n)``
round) is exactly the profile the uniform algorithms achieve as well.
"""

SECTIONS = (
    (
        "E1",
        "Largest-ID on a cycle: the exponential gap",
        "Section 2: the largest-ID problem has worst-case (classic) "
        "complexity Theta(n) on the n-cycle — the maximum must see everything — "
        "while the natural grow-the-ball algorithm has average radius Theta(log n) "
        "in the worst case over identifier assignments.",
        "the max radius equals floor(n/2) exactly at every size and fits "
        "a linear growth law; the average radius on the explicitly constructed "
        "worst arrangement equals the recurrence bound (floor(n/2) + a(n-1))/n "
        "exactly and fits a logarithmic law.  The gap column (max/avg) grows "
        "roughly like n / log n, the announced exponential separation.",
        lambda: largest_id.run(sizes=[16, 32, 64, 128, 256, 512, 1024]),
    ),
    (
        "E2",
        "The segment recurrence a(p) and OEIS A000788",
        "Section 2: the worst-case total radius on a p-vertex segment "
        "satisfies a(p) = max_k {k + a(k-1) + a(p-k)} and is Theta(p log p), "
        "cf. OEIS A000788.",
        "the recurrence coincides with A000788 term by term, exhaustive "
        "search over all identifier orders matches it for p <= 8, an explicit "
        "arrangement achieving it is constructed for every p, and the ratio "
        "a(p)/(p log2 p) settles near 1/2.",
        lambda: recurrence.run(sizes=[16, 64, 256, 1024, 4096, 16384]),
    ),
    (
        "E3",
        "3-colouring the ring: both measures at Theta(log* n)",
        "Section 3: the ring can be 3-coloured in O(log* n) rounds "
        "(Cole–Vishkin), which matches Linial's lower bound; the interesting "
        "point is that, unlike largest-ID, averaging does not change the picture.",
        "every Cole–Vishkin node commits at the same round "
        "(log*-many bit reductions plus three clean-up rounds), so the average "
        "equals the max and stays essentially flat from n=16 to n=2048 while "
        "never dropping below the Linial threshold.  The greedy-by-identifier "
        "baseline shows the contrast: its sorted-identifier worst case is linear.",
        lambda: coloring.run(sizes=[16, 32, 64, 128, 256, 512, 1024, 2048]),
    ),
    (
        "E4",
        "Theorem 1: the slice construction",
        "Theorem 1: the average complexity of 3-colouring the ring is "
        "Omega(log* n); the proof concatenates slices centred on vertices that "
        "Linial's bound forces to radius >= ceil(0.5 log*(n/2)).",
        "the executable slice construction finds, for every tested n, "
        "slices whose centres meet the threshold, and the average radius of the "
        "colouring algorithm on the constructed permutation (and on random "
        "permutations) never falls below that threshold.",
        lambda: lower_bound.run(sizes=[16, 32, 64, 128]),
    ),
    (
        "E5",
        "Regularity of the radius distribution (Lemmas 2 and 3)",
        "Lemmas 2-3: for minimal colouring algorithms the radii of "
        "vertices between two anchors x, y at distance k are bounded by "
        "max(r(x), r(y)) + k, and the average radius within r/2 of a radius-r "
        "vertex is Omega(r).",
        "Cole–Vishkin's flat profile satisfies Lemma 2 with zero "
        "violations and keeps the Lemma 3 ratio at 1.  The skewed largest-ID "
        "profile (not a colouring algorithm, so not covered by the lemmas) "
        "shows what a violation looks like, confirming the checks are not vacuous.",
        lambda: regularity.run(sizes=[16, 32, 64, 128]),
    ),
    (
        "E6",
        "Expected complexity under random identifiers (future work)",
        "Conclusion: proposes studying the expected running time when "
        "the identifier permutation is uniformly random, for both measures.",
        "for largest-ID the expected average radius grows "
        "logarithmically (tracking the harmonic-number scale H_n) and stays below "
        "the worst-case-over-assignments bound, while the expected classic "
        "measure remains exactly floor(n/2): randomness over identifiers does "
        "not remove the separation — averaging over nodes does.",
        lambda: random_ids.run(sizes=[16, 32, 64, 128, 256, 512], samples=16),
    ),
    (
        "E7",
        "Dynamic networks: label repair after a change at a random node",
        "Introduction: the average time to update the labels after a "
        "change at a random node can be estimated using the average measure.",
        "on cycles the analytic expected repair work equals "
        "2 * average_radius + 1 (up to the wrap-around term of the maximum's "
        "ball), Monte-Carlo churn agrees, and the estimate derived from the "
        "classic measure (2 * max_radius + 1) overshoots by an order of magnitude.",
        lambda: dynamic.run(sizes=[64, 128, 256, 512], churn_events=24),
    ),
    (
        "E8",
        "Parallel simulation: early-stopping nodes free processors",
        "Introduction: when parallel processors simulate a distributed "
        "computation, a finished job frees its processor, so the average running "
        "time is the relevant measure.",
        "greedy list scheduling of the node-jobs achieves a makespan "
        "governed by sum(r(v))/p + max r(v) — i.e. by the average radius — and "
        "beats the lock-step simulator (ceil(n/p) * max radius) by the max/avg "
        "ratio whenever there are enough jobs per processor.",
        lambda: parallel.run(sizes=[128, 256, 512, 1024], processor_counts=(4, 16, 64)),
    ),
    (
        "E9",
        "Equivalence of the ball view and the round view",
        "Introduction: gathering balls of increasing radius is 'an "
        "equivalent way to describe the LOCAL model'.",
        "compiling the ball-based largest-ID algorithm to message "
        "passing changes each node's stopping time by at most one round (the "
        "round view cannot see edges between two frontier nodes), and replaying "
        "the round-based Cole–Vishkin inside balls reproduces its radii exactly; "
        "outputs agree node-for-node in both directions.",
        lambda: simulators.run(sizes=[16, 32, 64, 128]),
    ),
    (
        "E10",
        "Which problems collapse under the average measure? (future work)",
        "Conclusion: asks to characterise the problems whose average complexity "
        "is far below their classic complexity versus those where the two "
        "measures essentially coincide.",
        "on the same ring, largest-ID collapses (linear classic measure, "
        "logarithmic average even against the worst tested assignment), "
        "Cole–Vishkin is perfectly stable (gap exactly 1, as Theorem 1 requires "
        "up to constants), and the greedy-by-identifier problems only look easy "
        "on random identifiers — the sorted order drives their *average* to "
        "Theta(n), so averaging alone does not collapse them.",
        lambda: characterization.run(n=192, samples=6),
    ),
    (
        "E11",
        "The average measure beyond cycles (future work)",
        "Conclusion: notes that only the cycle topology is considered and that "
        "results for more general graphs are missing.",
        "for largest-ID the average/classic separation persists on every "
        "high-diameter family (paths, grids, tori, trees, random trees) — the "
        "maximum still pays its eccentricity while typical vertices stop after "
        "a few hops — and narrows on dense random graphs whose diameter is "
        "already tiny.",
        lambda: general_graphs.run(n=144, samples=4),
    ),
    (
        "E12",
        "The adversary-search portfolio on the cycle",
        "Both measures are worst cases over the identifier assignment, so the "
        "outer adversarial search is itself part of the reproduction's cost "
        "model; the paper's exhaustive ground truth is only feasible for tiny n.",
        "the symmetry-pruned exact searches (canonical enumeration, branch and "
        "bound) report exactly the legacy exhaustive optimum while enumerating "
        "a fraction of the n! assignments (one per automorphism class of the "
        "cycle), and the heuristic swap portfolio attains the same value as a "
        "certified lower bound.",
        lambda: search_strategies.run(sizes=[7, 8]),
    ),
    (
        "E13",
        "Measure distributions over identifier assignments",
        "The paper's measures are worst cases over the identifier assignment; "
        "its follow-up questions (and the node/edge-averaged follow-up papers) "
        "ask how the running time is *distributed* when the assignment varies.",
        "over all n! assignments (computed exactly from n!/|Aut| simulations, "
        "orbit-weighted, total weight exactly n!) the classic measure on the "
        "cycle is a point mass at floor(n/2) while the average measure "
        "concentrates in a narrow band at the logarithmic scale; on trees the "
        "average's spread is strictly below the max's; seeded Monte-Carlo "
        "estimates reproduce the exact means within their standard errors.",
        lambda: distributions.run(sizes=[6, 7, 8]),
    ),
)


def render_campaign_section(rows: list[dict]) -> list[str]:
    """Markdown lines for a sweep-campaign section built from JSON rows."""
    parts = [
        "\n## Sweep campaigns\n",
        "Worst-case-over-assignments searches run through the engine "
        "(`repro sweep`); `value` is the best objective the adversary found, "
        "`hit_rate` the decision-cache hit rate of the search.\n",
        "| topology | n | algorithm | adversary | objective | value | evals | exact | hit_rate |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        cache = row.get("cache") or {}
        parts.append(
            "| {topology} | {n} | {algorithm} | {adversary} | {objective} "
            "| {value:.4f} | {evaluations} | {exact} | {hit_rate:.3f} |".format(
                hit_rate=cache.get("hit_rate", 0.0), **row
            )
        )
    parts.append("")
    return parts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    parser.add_argument(
        "--campaign",
        default=None,
        help="JSON rows from `repro sweep --output ...` to append as a section",
    )
    args = parser.parse_args()
    output_path = Path(args.output)
    parts = [HEADER]
    for experiment_id, title, paper_text, measured_text, runner in SECTIONS:
        result = runner()
        assert result.experiment_id == experiment_id
        parts.append(f"\n## {experiment_id} — {title}\n")
        parts.append(f"**Paper.** {paper_text}\n")
        parts.append(f"**Measured.** {measured_text}\n")
        parts.append("```")
        parts.append(str(result.table))
        parts.append("```\n")
        if result.notes:
            parts.append("Shape checks and fits:\n")
            parts.extend(f"- {note}" for note in result.notes)
            parts.append("")
        print(f"{experiment_id}: done")
    if args.campaign:
        parts.extend(render_campaign_section(load_rows(args.campaign)))
        print(f"campaign: appended rows from {args.campaign}")
    output_path.write_text("\n".join(parts) + "\n", encoding="utf-8")
    print(f"wrote {output_path}")


if __name__ == "__main__":
    main()
