#!/usr/bin/env python
"""Benchmark trend report: speedup trajectories over the BENCH_*.json history.

``scripts/check_bench_floors.py`` asserts each artifact's *current* speedups
against their floors; this report adds the time axis.  For every result
entry of every ``BENCH_*.json`` artifact it prints

* the current speedup and its floor (the entry's ``min_speedup``, falling
  back to the artifact's top-level one);
* the **headroom** — ``speedup / floor`` — how far the benchmark sits above
  the cliff (a shrinking headroom is a regression in progress even while
  the floor still holds);
* the speedup **trajectory** across the artifact's git history (oldest to
  newest, the working tree last), as numbers and an ASCII sparkline.

Artifacts without git history (untracked — several BENCH files are
regenerated and gitignored — or git absent) fall back to a current-only
report; ``--no-git`` forces that mode.  Pure stdlib; run directly or via
``make bench-trend``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_bench_floors import GATED_METRICS, GATED_RESULTS  # noqa: E402

#: Sparkline glyphs, lowest to highest.
SPARKS = "▁▂▃▄▅▆▇█"


def git_history_documents(path: Path, root: Path, limit: int) -> list[dict]:
    """The artifact's committed versions, oldest first (empty when none).

    Reads at most ``limit`` commits touching ``path`` via ``git log`` +
    ``git show``; unreadable or unparsable historical versions are skipped
    rather than failing the report.
    """
    relative = path.resolve().relative_to(root.resolve()).as_posix()
    try:
        log = subprocess.run(
            ["git", "log", "--format=%h", "-n", str(limit), "--", relative],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return []
    revisions = [line.strip() for line in log.stdout.splitlines() if line.strip()]
    documents = []
    for revision in reversed(revisions):  # oldest first
        shown = subprocess.run(
            ["git", "show", f"{revision}:{relative}"],
            cwd=root,
            capture_output=True,
            text=True,
        )
        if shown.returncode != 0:
            continue
        try:
            document = json.loads(shown.stdout)
        except ValueError:
            continue
        document["_revision"] = revision
        documents.append(document)
    return documents


def sparkline(values: list[float]) -> str:
    """An ASCII sparkline of ``values`` (empty string for fewer than two)."""
    if len(values) < 2:
        return ""
    low, high = min(values), max(values)
    if high - low < 1e-12:
        return SPARKS[-1] * len(values)
    scale = (len(SPARKS) - 1) / (high - low)
    return "".join(SPARKS[int((value - low) * scale + 0.5)] for value in values)


def entry_metric(entry: dict):
    """The entry's tracked measurement as ``(field, value, unit)``.

    Speedup-gated entries track ``speedup``; metric-gated ones (the scale
    artifact) have no speedup and fall back to ``nodes_per_s``.  Returns
    ``(None, None, None)`` for entries tracking neither.
    """
    if entry.get("speedup") is not None:
        return "speedup", entry["speedup"], "x"
    if entry.get("nodes_per_s") is not None:
        return "nodes_per_s", entry["nodes_per_s"], " nodes/s"
    return None, None, None


def entry_floor(key: str, entry: dict, document: dict, field: str):
    """The floor governing one result entry, ``None`` for ungated entries.

    Mirrors ``check_bench_floors``: only result keys matching a gated
    prefix for the artifact's kind are held to a floor — the entry's
    ``min_speedup`` (falling back to the artifact's top-level one) for
    speedup entries, the matching ``>=`` bound from ``GATED_METRICS`` for
    metric entries; everything else is recorded for information only.
    """
    kind = document.get("kind")
    gated = GATED_RESULTS.get(kind, ())
    if not any(key.startswith(prefix) for prefix, _required in gated):
        return None
    if field == "speedup":
        return entry.get("min_speedup", document.get("min_speedup"))
    for measured_key, bound_key, direction in GATED_METRICS.get(kind, ()):
        if measured_key == field and direction == ">=":
            return entry.get(bound_key)
    return None


def trend_rows(path: Path, root: Path, history: int, use_git: bool) -> list[dict]:
    """Per-result trend rows for one artifact (current version last)."""
    current = json.loads(path.read_text(encoding="utf-8"))
    documents = (
        git_history_documents(path, root, history) if use_git and history else []
    )
    documents.append(current)
    rows = []
    for key, entry in sorted(current.get("results", {}).items()):
        field, value, unit = entry_metric(entry)
        if field is None:
            continue
        trajectory = [
            past["results"][key][field]
            for past in documents
            if past.get("results", {}).get(key, {}).get(field) is not None
        ]
        floor = entry_floor(key, entry, current, field)
        rows.append(
            {
                "artifact": path.name,
                "key": key,
                "speedup": value,
                "unit": unit,
                "floor": floor,
                "headroom": (value / floor) if floor else None,
                "trajectory": trajectory,
            }
        )
    return rows


def _format_value(value: float, unit: str) -> str:
    """``2.41x`` for speedups, ``101,234 nodes/s`` for throughputs."""
    if unit == "x":
        return f"{value:.2f}x"
    return f"{value:,.0f}{unit}"


def render_text(rows: list[dict], artifacts: int) -> str:
    """The report as aligned plain text."""
    lines = [f"benchmark trend report — {artifacts} artifacts"]
    current_artifact = None
    for row in rows:
        if row["artifact"] != current_artifact:
            current_artifact = row["artifact"]
            lines.append("")
            lines.append(current_artifact)
        unit = row.get("unit", "x")
        value = _format_value(row["speedup"], unit)
        floor = (
            _format_value(row["floor"], unit) if row["floor"] is not None else "-"
        )
        headroom = (
            f"{row['headroom']:.2f}x" if row["headroom"] is not None else "-"
        )
        spark = sparkline(row["trajectory"])
        trail = f"  {spark}" if spark else ""
        points = len(row["trajectory"])
        history = f" ({points} versions)" if points > 1 else ""
        lines.append(
            f"  {row['key']:<30} {value:>16}  floor {floor:>15}  "
            f"headroom {headroom:>7}{trail}{history}"
        )
    return "\n".join(lines)


def render_markdown(rows: list[dict]) -> str:
    """The report as a GitHub-flavoured markdown table."""
    lines = [
        "| artifact | benchmark | speedup | floor | headroom | trend |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for row in rows:
        unit = row.get("unit", "x")
        floor = (
            _format_value(row["floor"], unit) if row["floor"] is not None else "-"
        )
        headroom = (
            f"{row['headroom']:.2f}x" if row["headroom"] is not None else "-"
        )
        spark = sparkline(row["trajectory"]) or "-"
        lines.append(
            f"| {row['artifact']} | {row['key']} | {_format_value(row['speedup'], unit)} "
            f"| {floor} | {headroom} | {spark} |"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """Entry point: print the trend report for every BENCH_*.json found."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(REPO_ROOT),
        help="directory holding the BENCH_*.json files (and the git repo)",
    )
    parser.add_argument(
        "--history",
        type=int,
        default=20,
        metavar="N",
        help="look back at most N commits per artifact (default 20)",
    )
    parser.add_argument(
        "--no-git",
        action="store_true",
        help="skip git history, report current values only",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown table instead of aligned text",
    )
    args = parser.parse_args(argv)
    root = Path(args.root)
    artifacts = sorted(root.glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {root}", file=sys.stderr)
        return 1
    rows: list[dict] = []
    for path in artifacts:
        rows.extend(trend_rows(path, root, args.history, use_git=not args.no_git))
    if args.markdown:
        print(render_markdown(rows))
    else:
        print(render_text(rows, len(artifacts)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
