#!/usr/bin/env python
"""Benchmark-regression guard: every BENCH_*.json speedup meets its floor.

The benchmark suite writes one JSON artifact per subsystem
(``BENCH_engine.json``, ``BENCH_search.json``, ...) recording measured
speedups next to the floor each benchmark asserts (``min_speedup``).  The
assertions inside the benchmarks only fire when the benchmarks *run*; this
script re-checks the committed (or freshly regenerated) artifacts, so a
regression that slipped into an artifact — or an artifact written by a run
whose assertions were skipped — fails CI's bench-smoke job loudly.

Gating rules, per artifact:

* every gated *prefix* in :data:`GATED_RESULTS` for the artifact's ``kind``
  must match at least one result entry (result keys embed workload sizes —
  ``exact_vs_brute_force_ring8`` full, ``..._ring7`` smoke — so gating is
  by prefix) and every matching entry must carry a ``speedup``;
* the floor is the entry's own ``min_speedup`` when it has one, else the
  artifact's top-level ``min_speedup``;
* prefixes marked optional (absent on reduced installs, e.g. the kernel's
  numpy leg on a numpy-free machine) are checked only when present.

Exit status 0 when every floor holds, 1 otherwise; ``--quiet`` suppresses
the per-entry report.  Run directly or via ``make bench-floors``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: kind -> ((result key prefix, required), ...).  Result keys not matching
#: any gated prefix are recorded for information only (some benchmarks
#: deliberately log unasserted timings, e.g. the enumeration-dominated
#: ``repeated_worst_case`` workload of BENCH_api.json).
GATED_RESULTS = {
    "repro-bench-engine": (
        ("exhaustive_ring", True),
        ("sampling_sweep", True),
    ),
    "repro-bench-search": (("pruned_vs_legacy", True),),
    "repro-bench-dist": (("exact_vs_brute_force", True),),
    "repro-bench-api": (("repeated_simulate", True),),
    "repro-bench-kernel": (
        ("batched_sampling_python", True),
        # The numpy leg only exists where numpy is importable.
        ("batched_sampling_numpy", False),
        # Per-algorithm vectorised-rule-vs-fallback floors (one entry per
        # registered algorithm; again, the numpy legs only where available).
        ("vector_rule_python", True),
        ("vector_rule_numpy", False),
        # Padded same-shape stacking vs sequential (numpy-only fast path).
        ("padded_same_shape", False),
    ),
    # speedup = off_s / on_s; the 0.95 floor tolerates ~5% instrumentation
    # overhead (the noop_span_call entry is informational, hence ungated).
    "repro-bench-obs": (("obs_overhead", True),),
    # Million-node scale path: gated on throughput + memory, not speedup
    # (see GATED_METRICS).
    "repro-bench-scale": (("scale_cycle", True),),
    # The query service: a store hit must beat cold compute >= 5x, both
    # in-process and across a process restart (the on-disk tier).
    "repro-bench-serve": (
        ("store_hit_vs_cold", True),
        ("store_hit_across_restart", True),
    ),
    # The persistent worker runtime: repeated dispatch over the warm pool
    # vs a fresh multiprocessing.Pool per call, and handle-based task
    # messages vs inline-pickled CSR arrays (speedup = byte ratio).
    "repro-bench-parallel": (
        ("warm_pool_dispatch", True),
        ("shm_fanout", True),
    ),
}

#: kind -> ((measured key, bound key, direction), ...) for artifacts whose
#: gated entries carry absolute throughput/memory bounds instead of speedup
#: floors: ``">="`` means the measurement must meet a floor (nodes/sec),
#: ``"<="`` that it must stay under a ceiling (peak RSS).
GATED_METRICS = {
    "repro-bench-scale": (
        ("nodes_per_s", "min_nodes_per_s", ">="),
        ("peak_rss_bytes", "max_rss_bytes", "<="),
        # The scaling ratchet: nodes/s relative to the smallest probed size
        # (the baseline entry carries a trivial 0.0 floor).
        ("rel_nodes_per_s", "min_rel_nodes_per_s", ">="),
    ),
}


def check_artifact(path: Path, quiet: bool = False) -> list[str]:
    """Return the floor violations (empty = artifact healthy)."""
    document = json.loads(path.read_text(encoding="utf-8"))
    kind = document.get("kind")
    gated = GATED_RESULTS.get(kind)
    if gated is None:
        return [f"{path.name}: unknown artifact kind {kind!r} (update GATED_RESULTS)"]
    default_floor = document.get("min_speedup")
    results = document.get("results", {})
    problems = []
    for prefix, required in gated:
        matches = sorted(key for key in results if key.startswith(prefix))
        if not matches:
            if required:
                problems.append(
                    f"{path.name}: no result matches gated prefix {prefix!r}"
                )
            continue
        for key in matches:
            entry = results[key]
            metric_specs = GATED_METRICS.get(kind)
            if metric_specs:
                problems.extend(
                    _check_metrics(path, key, entry, metric_specs, quiet=quiet)
                )
                continue
            speedup = entry.get("speedup")
            floor = entry.get("min_speedup", default_floor)
            if speedup is None or floor is None:
                problems.append(
                    f"{path.name}: {key!r} lacks a speedup/min_speedup pair"
                )
                continue
            status = "ok" if speedup >= floor else "REGRESSION"
            if not quiet:
                print(
                    f"  {path.name:>22} {key:<28} {speedup:8.2f}x >= {floor:.2f}x  {status}"
                )
            if speedup < floor:
                problems.append(
                    f"{path.name}: {key} speedup {speedup:.2f}x is below its "
                    f"floor of {floor:.2f}x"
                )
    return problems


def _check_metrics(
    path: Path, key: str, entry: dict, specs, quiet: bool = False
) -> list[str]:
    """Violations of one metric-gated entry's absolute bounds."""
    problems = []
    for measured_key, bound_key, direction in specs:
        measured = entry.get(measured_key)
        bound = entry.get(bound_key)
        if measured is None or bound is None:
            problems.append(
                f"{path.name}: {key!r} lacks a {measured_key}/{bound_key} pair"
            )
            continue
        holds = measured >= bound if direction == ">=" else measured <= bound
        status = "ok" if holds else "REGRESSION"
        if not quiet:
            print(
                f"  {path.name:>22} {key:<28} {measured_key} "
                f"{measured:,.0f} {direction} {bound:,.0f}  {status}"
            )
        if not holds:
            problems.append(
                f"{path.name}: {key} {measured_key} {measured:,.0f} violates "
                f"its bound of {direction} {bound:,.0f}"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=str(REPO_ROOT), help="directory holding the BENCH_*.json files"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the per-entry report")
    args = parser.parse_args(argv)
    root = Path(args.root)
    artifacts = sorted(root.glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {root}", file=sys.stderr)
        return 1
    problems = []
    for path in artifacts:
        problems.extend(check_artifact(path, quiet=args.quiet))
    if problems:
        for problem in problems:
            print(f"FLOOR VIOLATION: {problem}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"all {len(artifacts)} benchmark artifacts meet their floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
