"""Benchmark E10 — which problems collapse under the average measure."""

from bench_smoke import pick

from repro.experiments import characterization

N = pick(192, 64)
SAMPLES = pick(6, 3)


def test_bench_e10_characterization(benchmark, report):
    result = benchmark.pedantic(
        lambda: characterization.run(n=N, samples=SAMPLES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E10"
    classifications = {row["algorithm"]: row["classification"] for row in result.table.rows}
    assert classifications["largest-id"] == "collapses"
    assert classifications["cole-vishkin"] == "stable"
