"""Benchmark E9 — equivalence of the ball view and the round view."""

from bench_smoke import pick

from repro.experiments import simulators

SIZES = pick([16, 32, 64, 128], [16, 32])


def test_bench_e9_simulators(benchmark, report):
    result = benchmark.pedantic(
        lambda: simulators.run(sizes=SIZES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E9"
    assert all(row["outputs_agree"] for row in result.table.rows)
