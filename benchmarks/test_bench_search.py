"""Search-vs-legacy benchmark with a JSON artifact.

Three claims of the search subsystem are measured and asserted —

* **pruned exhaustive >= 5x legacy exhaustive on the 8-cycle**: the legacy
  adversary evaluates all ``8! = 40320`` permutations through its engine
  session; the canonical enumeration evaluates one assignment per orbit of
  the cycle's automorphism group and must land at least ``MIN_SPEEDUP``
  times faster while reporting the identical optimum;
* **exact search beyond the legacy n <= 9 limit**: branch and bound proves
  the worst case on the 10-cycle (a space of ``10! = 3628800``) and the
  result must equal the paper's recurrence bound ``a(n) = floor(n/2) +
  a(n-1)`` exactly;
* **full-symmetry collapse**: on the complete graph ``K_12`` (``12!``
  assignments) the canonical enumeration is a single evaluation.

Timings, speedups and certificates are written to ``BENCH_search.json``
next to the repo root so CI can archive them.  Under
``REPRO_BENCH_SMOKE=1`` the same assertions run one size down (7-cycle,
9-cycle, ``K_8``) with a relaxed speedup floor.
"""

from __future__ import annotations

import json
import math
import time

from bench_smoke import SMOKE, artifact_path, pick

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.adversary import ExhaustiveAdversary
from repro.search.adversaries import (
    BranchAndBoundAdversary,
    PrunedExhaustiveAdversary,
)
from repro.theory.bounds import largest_id_sum_upper_bound
from repro.topology.complete import complete_graph
from repro.topology.cycle import cycle_graph

ARTIFACT_PATH = artifact_path("BENCH_search.json")
MIN_SPEEDUP = pick(5.0, 2.0)
PRUNED_N = pick(8, 7)
EXACT_N = pick(10, 9)
COLLAPSE_N = pick(12, 8)

_RESULTS: dict[str, dict] = {}


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value


def _record(name: str, entry: dict) -> dict:
    _RESULTS[name] = entry
    payload = {
        "kind": "repro-bench-search",
        "min_speedup": MIN_SPEEDUP,
        "smoke": SMOKE,
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entry


def test_bench_pruned_vs_legacy_exhaustive_ring8():
    n = PRUNED_N
    graph = cycle_graph(n)
    algorithm = LargestIdAlgorithm()

    legacy_s, legacy = _timed(
        lambda: ExhaustiveAdversary().maximise(graph, algorithm, "average")
    )
    pruned_s, pruned = _timed(
        lambda: PrunedExhaustiveAdversary().maximise(graph, algorithm, "average")
    )
    assert pruned.exact and pruned.value == legacy.value
    assert legacy.evaluations == math.factorial(n)
    certificate = pruned.certificate
    # One representative per orbit of the dihedral group (order 2n).
    assert certificate.canonical_leaves == math.factorial(n) // (2 * n)
    entry = _record(
        f"pruned_vs_legacy_ring{n}",
        {
            "legacy_s": legacy_s,
            "pruned_s": pruned_s,
            "speedup": legacy_s / pruned_s,
            "value": pruned.value,
            "legacy_evaluations": legacy.evaluations,
            "canonical_leaves": certificate.canonical_leaves,
            "certificate": certificate.as_dict(),
        },
    )
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"pruned exhaustive only {entry['speedup']:.2f}x faster than the legacy "
        f"exhaustive on the {n}-cycle (wanted >= {MIN_SPEEDUP}x): {entry}"
    )


def test_bench_exact_search_beyond_legacy_limit_ring10():
    # n = 10 > 9: outside the legacy adversary's feasibility guard (the
    # smoke mode drops to 9).  The paper's segment recurrence gives the
    # exact worst-case radius sum on the cycle, so the search result is
    # cross-checked against theory.
    n = EXACT_N
    graph = cycle_graph(n)
    algorithm = LargestIdAlgorithm()
    elapsed_s, result = _timed(
        lambda: BranchAndBoundAdversary().maximise(graph, algorithm, "sum")
    )
    assert result.exact
    assert result.value == float(largest_id_sum_upper_bound(n))
    certificate = result.certificate
    assert certificate.space_size == math.factorial(n)
    _record(
        f"exact_ring{n}",
        {
            "elapsed_s": elapsed_s,
            "value": result.value,
            "theory_value": largest_id_sum_upper_bound(n),
            "space_size": certificate.space_size,
            "nodes_expanded": certificate.nodes_expanded,
            "certificate": certificate.as_dict(),
        },
    )


def test_bench_full_symmetry_collapse_k12():
    n = COLLAPSE_N
    graph = complete_graph(n)
    algorithm = LargestIdAlgorithm()
    elapsed_s, result = _timed(
        lambda: PrunedExhaustiveAdversary().maximise(graph, algorithm, "average")
    )
    assert result.exact and result.value == 1.0
    assert result.certificate.canonical_leaves == 1
    assert result.certificate.group_order == math.factorial(n)
    _record(
        f"full_symmetry_k{n}",
        {
            "elapsed_s": elapsed_s,
            "value": result.value,
            "space_size": math.factorial(n),
            "canonical_leaves": result.certificate.canonical_leaves,
        },
    )
