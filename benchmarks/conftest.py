"""Shared helpers for the benchmark suite.

Every experiment benchmark runs the experiment exactly once under
``pytest-benchmark`` timing (``rounds=1``) — the experiments are
deterministic end-to-end sweeps, so repeating them only to tighten timing
statistics would waste minutes — and then prints the experiment's table with
capture disabled so the rows land in the terminal and in
``bench_output.txt`` alongside the timing summary.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print an ExperimentResult through the capture barrier."""

    def _report(result) -> None:
        with capsys.disabled():
            print()
            print(result)
            print()

    return _report
