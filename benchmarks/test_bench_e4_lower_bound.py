"""Benchmark E4 — Theorem 1: the slice construction keeps the average at Omega(log* n)."""

from bench_smoke import pick

from repro.experiments import lower_bound

SIZES = pick([16, 32, 64, 128], [16, 32])


def test_bench_e4_lower_bound(benchmark, report):
    result = benchmark.pedantic(
        lambda: lower_bound.run(sizes=SIZES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E4"
    assert all(
        row["avg_on_construction"] >= row["linial_threshold"] for row in result.table.rows
    )
