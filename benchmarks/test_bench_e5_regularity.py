"""Benchmark E5 — the regularity lemmas (Lemmas 2 and 3) on real executions."""

from bench_smoke import pick

from repro.experiments import regularity

SIZES = pick([16, 32, 64, 128], [16, 32])


def test_bench_e5_regularity(benchmark, report):
    result = benchmark.pedantic(
        lambda: regularity.run(sizes=SIZES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E5"
    cv_rows = [row for row in result.table.rows if row["algorithm"] == "cole-vishkin"]
    assert all(row["lemma2_violations"] == 0 for row in cv_rows)
