"""Benchmark E12 — the adversary-search portfolio on the cycle."""

from repro.experiments import search_strategies


def test_bench_e12_search_strategies(benchmark, report):
    result = benchmark.pedantic(
        lambda: search_strategies.run(sizes=[7, 8]), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E12"
    assert len(result.table) == 8
