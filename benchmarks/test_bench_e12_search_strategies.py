"""Benchmark E12 — the adversary-search portfolio on the cycle."""

from bench_smoke import pick

from repro.experiments import search_strategies

SIZES = pick([7, 8], [6, 7])


def test_bench_e12_search_strategies(benchmark, report):
    result = benchmark.pedantic(
        lambda: search_strategies.run(sizes=SIZES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E12"
    assert len(result.table) == 4 * len(SIZES)
