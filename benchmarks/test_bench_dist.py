"""Distribution-layer benchmark with a JSON artifact.

Two claims of the distribution subsystem are measured and asserted —

* **exact via canonical classes >= 3x brute force on the 8-cycle**: the
  brute-force reference simulates all ``8! = 40320`` assignments through an
  engine session; the orbit-weighted canonical enumeration simulates one
  representative per automorphism class (``8!/16 = 2520``) and must produce
  the *identical* distribution — same joint, same per-node marginals, total
  weight exactly ``8!`` — at least ``MIN_SPEEDUP`` times faster;
* **sampling throughput**: the streaming estimator's assignments/second on
  a 64-cycle, recorded so regressions in the Monte-Carlo path show up in
  the artifact diff.

Timings, speedups and certificates are written to ``BENCH_dist.json`` next
to the repo root so CI can archive them.  Under ``REPRO_BENCH_SMOKE=1`` the
same assertions run on the 7-cycle with a reduced sample budget.
"""

from __future__ import annotations

import json
import math
import time

from bench_smoke import SMOKE, artifact_path, pick

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.dist.exact import brute_force_round_distribution, exact_round_distribution
from repro.dist.sampling import sample_round_distribution
from repro.topology.cycle import cycle_graph

ARTIFACT_PATH = artifact_path("BENCH_dist.json")
MIN_SPEEDUP = pick(3.0, 2.0)
EXACT_N = pick(8, 7)
SAMPLING_N = 64
SAMPLING_BUDGET = pick(256, 64)

_RESULTS: dict[str, dict] = {}


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value


def _record(name: str, entry: dict) -> dict:
    _RESULTS[name] = entry
    payload = {
        "kind": "repro-bench-dist",
        "min_speedup": MIN_SPEEDUP,
        "smoke": SMOKE,
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entry


def test_bench_exact_distribution_vs_brute_force_ring():
    n = EXACT_N
    graph = cycle_graph(n)
    algorithm = LargestIdAlgorithm()

    brute_s, brute = _timed(
        lambda: brute_force_round_distribution(graph, algorithm, max_nodes=n)
    )
    exact_s, exact = _timed(lambda: exact_round_distribution(graph, algorithm))
    # Identical distribution, not merely identical summary statistics.
    assert exact.distribution == brute
    assert exact.distribution.total_weight == math.factorial(n)
    certificate = exact.certificate
    # One representative per orbit of the dihedral group (order 2n).
    assert certificate.canonical_leaves == math.factorial(n) // (2 * n)
    assert certificate.class_weight == 2 * n
    entry = _record(
        f"exact_vs_brute_force_ring{n}",
        {
            "brute_force_s": brute_s,
            "exact_s": exact_s,
            "speedup": brute_s / exact_s,
            "space_size": math.factorial(n),
            "canonical_leaves": certificate.canonical_leaves,
            "mean_average": exact.distribution.mean_average(),
            "mean_max": exact.distribution.mean_max(),
            "certificate": certificate.as_dict(),
        },
    )
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"orbit-weighted exact distribution only {entry['speedup']:.2f}x faster "
        f"than brute-force n! enumeration on the {n}-cycle "
        f"(wanted >= {MIN_SPEEDUP}x): {entry}"
    )


def test_bench_sampling_estimator_throughput():
    graph = cycle_graph(SAMPLING_N)
    algorithm = LargestIdAlgorithm()
    elapsed_s, result = _timed(
        lambda: sample_round_distribution(
            graph, algorithm, samples=SAMPLING_BUDGET, seed=17
        )
    )
    assert result.samples == SAMPLING_BUDGET
    # The max node always sees half the ring; the estimator must agree.
    assert result.maximum.mean == SAMPLING_N // 2
    _record(
        f"sampling_throughput_ring{SAMPLING_N}",
        {
            "elapsed_s": elapsed_s,
            "samples": SAMPLING_BUDGET,
            "samples_per_s": SAMPLING_BUDGET / elapsed_s,
            "mean_average": result.average.mean,
            "std_error_average": result.average.std_error,
        },
    )
