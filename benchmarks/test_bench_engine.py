"""Legacy-vs-engine benchmark with a JSON artifact.

Measures the two workloads named by the engine's acceptance criteria —

* an **exhaustive adversary** on the 7-cycle (all 5040 permutations), and
* a **sampling-adversary sweep** on a 64-cycle (random-search budget of 48),

each as: legacy = the from-scratch reference runner evaluated once per
assignment (exactly the pre-engine execution path), engine = the adversary's
engine session (frontier plans + decision cache).  Both paths are timed
best-of-``REPEATS`` and must agree on the objective value; the engine must
be at least ``MIN_SPEEDUP`` times faster.  Results — timings, speedups and
cache hit rates — are written to ``BENCH_engine.json`` next to the repo
root so CI can archive them.
"""

from __future__ import annotations

import itertools
import json
import time

from bench_smoke import SMOKE, artifact_path, pick

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.adversary import (
    ExhaustiveAdversary,
    RandomSearchAdversary,
    trace_objective,
)
from repro.core.runner import reference_run_ball_algorithm
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.topology.cycle import cycle_graph
from repro.utils.rng import make_rng

ARTIFACT_PATH = artifact_path("BENCH_engine.json")
MIN_SPEEDUP = 3.0
REPEATS = pick(2, 1)

_RESULTS: dict[str, dict] = {}


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _record(name: str, legacy_s: float, engine_s: float, value: float, cache_stats):
    entry = {
        "legacy_s": legacy_s,
        "engine_s": engine_s,
        "speedup": legacy_s / engine_s,
        "value": value,
        "cache": cache_stats.as_dict() if cache_stats else None,
    }
    _RESULTS[name] = entry
    payload = {
        "kind": "repro-bench-engine",
        "min_speedup": MIN_SPEEDUP,
        "smoke": SMOKE,
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entry


def test_bench_exhaustive_adversary_ring7():
    graph = cycle_graph(7)
    algorithm = LargestIdAlgorithm()

    def legacy():
        best = -1.0
        for permutation in itertools.permutations(range(7)):
            trace = reference_run_ball_algorithm(
                graph, IdentifierAssignment(permutation), algorithm
            )
            best = max(best, trace_objective(trace, "average"))
        return best

    def engine():
        return ExhaustiveAdversary().maximise(graph, algorithm, objective="average")

    legacy_s, legacy_value = _best_of(legacy)
    engine_s, result = _best_of(engine)
    assert result.value == legacy_value
    entry = _record(
        "exhaustive_ring_n7", legacy_s, engine_s, result.value, result.cache_stats
    )
    assert result.cache_stats.hit_rate > 0.9
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"engine only {entry['speedup']:.2f}x faster than the legacy runner "
        f"on the exhaustive ring (wanted >= {MIN_SPEEDUP}x): {entry}"
    )


def test_bench_sampling_adversary_sweep_n64():
    n, samples, seed = 64, 48, 9
    graph = cycle_graph(n)
    algorithm = LargestIdAlgorithm()

    def legacy():
        # Exactly the assignments RandomSearchAdversary(seed) will draw.
        rng = make_rng(seed)
        best = -1.0
        for _ in range(samples):
            ids = random_assignment(n, seed=rng.getrandbits(64))
            trace = reference_run_ball_algorithm(graph, ids, algorithm)
            best = max(best, trace_objective(trace, "average"))
        return best

    def engine():
        return RandomSearchAdversary(samples=samples, seed=seed).maximise(
            graph, algorithm, objective="average"
        )

    legacy_s, legacy_value = _best_of(legacy)
    engine_s, result = _best_of(engine)
    assert result.value == legacy_value
    entry = _record(
        f"sampling_sweep_n{n}", legacy_s, engine_s, result.value, result.cache_stats
    )
    assert result.cache_stats.hit_rate > 0.5
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"engine only {entry['speedup']:.2f}x faster than the legacy runner "
        f"on the sampling sweep (wanted >= {MIN_SPEEDUP}x): {entry}"
    )
