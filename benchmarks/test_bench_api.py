"""Warm-session-vs-fresh-setup benchmark with a JSON artifact.

Measures the point of the :class:`repro.api.session.Session` redesign: a
session that owns the shared infrastructure (cached graphs with their
frontier plans, per-``(graph, algorithm)`` engine runners with warm decision
caches) must beat fresh per-call setup by at least ``MIN_SPEEDUP`` on a
repeated-query workload.

Two workloads are timed best-of-``REPEATS``:

* **repeated simulate queries** — the same ring, many identifier seeds;
  fresh setup rebuilds the graph, the frontier plans and a cold decision
  cache per query, the warm session reuses all three (asserted speedup);
* **repeated worst-case queries** — the same exact branch-and-bound search;
  the warm session reuses the graph's automorphism group and plans, but the
  enumeration dominates, so the timings are recorded without a speedup
  assertion.

Both paths must agree on every measure value.  Results are written to
``BENCH_api.json`` next to the repo root so CI can archive them.
"""

from __future__ import annotations

import json
import time

from bench_smoke import SMOKE, artifact_path, pick

from repro.api.query import Query
from repro.api.session import Session

ARTIFACT_PATH = artifact_path("BENCH_api.json")
MIN_SPEEDUP = 1.5
REPEATS = pick(3, 2)

SIMULATE_N = pick(64, 24)
SIMULATE_QUERIES = pick(12, 5)
SEARCH_N = pick(8, 6)
SEARCH_QUERIES = pick(4, 3)

_RESULTS: dict[str, dict] = {}


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _record(name: str, fresh_s: float, warm_s: float, extra: dict) -> dict:
    entry = {
        "fresh_s": fresh_s,
        "warm_s": warm_s,
        "speedup": fresh_s / warm_s,
        **extra,
    }
    _RESULTS[name] = entry
    payload = {
        "kind": "repro-bench-api",
        "min_speedup": MIN_SPEEDUP,
        "smoke": SMOKE,
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entry


def _simulate_queries() -> list[Query]:
    return [
        Query(
            mode="simulate",
            topologies="cycle",
            sizes=SIMULATE_N,
            algorithms="largest-id",
            ids="random",
            seed=seed,
        )
        for seed in range(SIMULATE_QUERIES)
    ]


def test_bench_warm_session_repeated_simulate():
    queries = _simulate_queries()

    def fresh():
        # Fresh per-call setup: a new session per query rebuilds the graph,
        # its frontier plans and a cold decision cache every time.
        return [Session().run(query).measures["average"] for query in queries]

    def warm():
        session = Session()
        return [session.run(query).measures["average"] for query in queries]

    fresh_s, fresh_values = _best_of(fresh)
    warm_s, warm_values = _best_of(warm)
    assert warm_values == fresh_values, "warm and fresh sessions must agree"
    entry = _record(
        f"repeated_simulate_n{SIMULATE_N}x{SIMULATE_QUERIES}",
        fresh_s,
        warm_s,
        {"n": SIMULATE_N, "queries": SIMULATE_QUERIES, "values": fresh_values},
    )
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"warm session only {entry['speedup']:.2f}x faster than fresh per-call "
        f"setup on the repeated simulate workload (wanted >= {MIN_SPEEDUP}x): {entry}"
    )


def test_bench_warm_session_repeated_worst_case():
    query = Query(
        mode="worst-case",
        topologies="cycle",
        sizes=SEARCH_N,
        algorithms="largest-id",
        adversaries="branch-and-bound",
        measure="average",
    )

    def fresh():
        return [Session().run(query).rows[0]["value"] for _ in range(SEARCH_QUERIES)]

    def warm():
        session = Session()
        return [session.run(query).rows[0]["value"] for _ in range(SEARCH_QUERIES)]

    fresh_s, fresh_values = _best_of(fresh)
    warm_s, warm_values = _best_of(warm)
    assert warm_values == fresh_values
    # Recorded without a speedup assertion: the branch-and-bound enumeration
    # dominates this workload, so warm-vs-fresh hovers around 1.0x and any
    # numeric floor would only measure CI scheduling noise.  The asserted
    # session win lives in test_bench_warm_session_repeated_simulate.
    _record(
        f"repeated_worst_case_n{SEARCH_N}x{SEARCH_QUERIES}",
        fresh_s,
        warm_s,
        {"n": SEARCH_N, "queries": SEARCH_QUERIES, "value": fresh_values[0]},
    )
