"""Benchmark E3 — 3-colouring the ring: both measures sit at Theta(log* n)."""

from bench_smoke import pick

from repro.experiments import coloring

SIZES = pick([16, 32, 64, 128, 256, 512, 1024, 2048], [16, 32, 64])


def test_bench_e3_coloring(benchmark, report):
    result = benchmark.pedantic(
        lambda: coloring.run(sizes=SIZES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E3"
    assert len(result.table) == len(SIZES)
