"""Batched sampling vs per-assignment execution, with a JSON artifact.

The kernel's acceptance workload: the distribution-sampling loop on an
8-cycle under the largest-ID algorithm.  Three executions of the same
assignment stream are timed —

* **runner** — one :class:`~repro.engine.frontier.FrontierRunner` session
  with a warm :class:`~repro.engine.cache.DecisionCache`, one ``run`` per
  assignment: exactly the pre-kernel sampling path;
* **kernel/python** — the compiled instance's pure-stdlib backend,
  ``simulate_batch`` over chunks of assignments;
* **kernel/numpy** — the same batches through the numpy backend (skipped,
  and omitted from the artifact, when numpy is not importable).

The radii of all paths are asserted bit-identical in the same run, then the
stdlib backend must not regress (>= ``MIN_SPEEDUP_PYTHON``) and the numpy
backend must clear ``MIN_SPEEDUP_NUMPY``.  Timings and speedups land in
``BENCH_kernel.json`` (checked against these floors again by
``scripts/check_bench_floors.py``).
"""

from __future__ import annotations

import json
import time

from bench_smoke import SMOKE, artifact_path, pick

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.engine.cache import DecisionCache
from repro.engine.frontier import FrontierRunner
from repro.kernel import compile_instance, numpy_available, simulate_batch
from repro.kernel.compile import DEFAULT_BATCH_ROWS
from repro.model.identifiers import IdentifierAssignment, random_assignment
from repro.topology.cycle import cycle_graph
from repro.utils.rng import make_rng

ARTIFACT_PATH = artifact_path("BENCH_kernel.json")
#: Ratcheted after the vector rules stabilised (bench-trend report): full
#: runs measure ~24x (numpy) / ~14x (python) on the batched workload and
#: 13-1300x on the vectorised rules, smoke runs bottom out around 14-17x —
#: the floors sit at roughly a third of the weakest measurement, generous
#: headroom against machine noise while still catching a real regression.
MIN_SPEEDUP_NUMPY = 8.0
MIN_SPEEDUP_PYTHON = 4.0
#: Per-algorithm floors for the vectorised rules against the decide-backed
#: RunnerTableRule fallback (cold cache) on the same assignment stream.
MIN_SPEEDUP_VECTOR_NUMPY = 6.0
MIN_SPEEDUP_VECTOR_PYTHON = 4.0
#: Floor for the padded same-shape fast path over sequential per-instance
#: evaluation of the same requests (numpy backend only).  The workload is
#: the campaign-grid shape padding exists for: many small same-shape cells
#: with a modest sample stream each, where per-call dispatch overhead
#: dominates sequential evaluation.
MIN_SPEEDUP_PADDED = 1.5
PADDED_INSTANCES = 32
PADDED_ROWS = 16
RING_N = 8
SAMPLES = pick(4096, 512)
VECTOR_ROWS = pick(512, 64)
REPEATS = pick(3, 1)

_RESULTS: dict[str, dict] = {}


def _assignment_rows() -> list[tuple[int, ...]]:
    """The deterministic sampling stream (one master seed, one child per draw)."""
    master = make_rng(20260729)
    return [
        random_assignment(RING_N, seed=master.getrandbits(64)).identifiers()
        for _ in range(SAMPLES)
    ]


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _write_artifact() -> None:
    payload = {
        "kind": "repro-bench-kernel",
        "smoke": SMOKE,
        "numpy_available": numpy_available(),
        "workload": {"topology": "cycle", "n": RING_N, "samples": SAMPLES},
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_bench_batched_sampling_vs_runner():
    graph = cycle_graph(RING_N)
    algorithm = LargestIdAlgorithm()
    rows = _assignment_rows()
    chunks = [
        rows[start : start + DEFAULT_BATCH_ROWS]
        for start in range(0, len(rows), DEFAULT_BATCH_ROWS)
    ]

    def run_reference():
        runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
        radii = []
        for row in rows:
            trace = runner.run(IdentifierAssignment(row))
            per_position = trace.radii()
            radii.append(tuple(per_position[p] for p in range(RING_N)))
        return radii

    def run_kernel(backend: str):
        instance = compile_instance(graph, algorithm, backend=backend)

        def execute():
            radii = []
            for chunk in chunks:
                radii.extend(simulate_batch(instance, chunk))
            return radii

        return execute

    runner_s, reference = _best_of(run_reference)
    python_s, python_radii = _best_of(run_kernel("python"))
    # Kernel-vs-runner trace equality, asserted in the same run as the
    # throughput claim: the speedup must not come from computing different
    # radii.
    assert python_radii == reference
    python_speedup = runner_s / python_s
    _RESULTS["batched_sampling_python"] = {
        "runner_s": runner_s,
        "kernel_s": python_s,
        "speedup": python_speedup,
        "min_speedup": MIN_SPEEDUP_PYTHON,
        "backend": "python",
        "samples": SAMPLES,
    }
    numpy_speedup = None
    if numpy_available():
        numpy_s, numpy_radii = _best_of(run_kernel("numpy"))
        assert numpy_radii == reference
        numpy_speedup = runner_s / numpy_s
        _RESULTS["batched_sampling_numpy"] = {
            "runner_s": runner_s,
            "kernel_s": numpy_s,
            "speedup": numpy_speedup,
            "min_speedup": MIN_SPEEDUP_NUMPY,
            "backend": "numpy",
            "samples": SAMPLES,
        }
    _write_artifact()
    print(
        f"\nkernel sampling x{SAMPLES}: runner {runner_s:.3f}s, "
        f"python {python_s:.3f}s ({python_speedup:.1f}x), "
        + (
            f"numpy {numpy_speedup:.1f}x"
            if numpy_speedup is not None
            else "numpy unavailable"
        )
    )
    assert python_speedup >= MIN_SPEEDUP_PYTHON
    if numpy_speedup is not None:
        assert numpy_speedup >= MIN_SPEEDUP_NUMPY


def test_bench_padded_same_shape_batching():
    """Padded same-shape stacking beats sequential per-instance evaluation.

    ``PADDED_INSTANCES`` separately-compiled cycle instances (same ``(n,
    stream length)`` shape, numpy backend) go through
    :func:`simulate_many` twice: once with the padded fast path and once
    with ``pad_same_shape=False``.  Results are asserted bit-identical in
    the same run, and the speedup lands in the artifact under
    ``padded_same_shape_numpy`` with its own floor.  Skipped (and omitted
    from the artifact) without numpy — the padded path is numpy-only.
    """
    import pytest

    from repro.kernel import BatchRequest, simulate_many

    if not numpy_available():
        pytest.skip("padded batching is a numpy-only fast path")

    ring_n = RING_N
    rows_per_instance = PADDED_ROWS
    algorithm = LargestIdAlgorithm()
    master = make_rng(20260807)
    instances = [
        compile_instance(cycle_graph(ring_n), algorithm, backend="numpy")
        for _ in range(PADDED_INSTANCES)
    ]
    streams = [
        [
            random_assignment(ring_n, seed=master.getrandbits(64)).identifiers()
            for _ in range(rows_per_instance)
        ]
        for _ in instances
    ]
    requests = [
        BatchRequest(instance, stream)
        for instance, stream in zip(instances, streams)
    ]

    sequential_s, reference = _best_of(
        lambda: simulate_many(requests, pad_same_shape=False), repeats=pick(7, 3)
    )
    padded_s, padded = _best_of(lambda: simulate_many(requests), repeats=pick(7, 3))
    assert padded == reference
    speedup = sequential_s / padded_s
    _RESULTS["padded_same_shape_numpy"] = {
        "sequential_s": sequential_s,
        "kernel_s": padded_s,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP_PADDED,
        "backend": "numpy",
        "instances": PADDED_INSTANCES,
        "rows": rows_per_instance,
    }
    _write_artifact()
    print(
        f"\npadded batching x{PADDED_INSTANCES} instances, "
        f"{rows_per_instance} rows each: sequential {sequential_s:.3f}s, "
        f"padded {padded_s:.3f}s ({speedup:.1f}x)"
    )
    assert speedup >= MIN_SPEEDUP_PADDED, (
        f"padded speedup {speedup:.2f}x below {MIN_SPEEDUP_PADDED:.2f}x"
    )


def test_bench_fallback_rule_matches_runner():
    """The decide-backed fallback stays bit-identical (and is recorded)."""
    from repro.algorithms.greedy_coloring import GreedyColoringByID
    from repro.core.algorithm import FunctionBallAlgorithm

    graph = cycle_graph(RING_N)
    # An opaque FunctionBallAlgorithm offers no compile_kernel_rule, so it
    # still selects the fallback (every registered algorithm vectorises).
    algorithm = FunctionBallAlgorithm(
        GreedyColoringByID().decide,
        name="greedy-coloring-opaque",
        problem="coloring",
        order_invariant=True,
        uses_ports=False,
    )
    rows = _assignment_rows()[: pick(256, 64)]
    instance = compile_instance(graph, algorithm)
    assert not instance.vectorized

    started = time.perf_counter()
    batched = simulate_batch(instance, rows)
    elapsed = time.perf_counter() - started

    runner = FrontierRunner(graph, algorithm, cache=DecisionCache(algorithm))
    for row, radii in zip(rows, batched):
        per_position = runner.run(IdentifierAssignment(row)).radii()
        assert tuple(per_position[p] for p in range(RING_N)) == radii
    _RESULTS["fallback_rule_ring8"] = {
        "kernel_s": elapsed,
        "rows": len(rows),
        "rule": instance.rule.name,
    }
    _write_artifact()


def test_bench_per_algorithm_vector_rules():
    """Every registered algorithm's vectorised rule beats the fallback.

    One permutation stream per run; for each registry name the stream is
    timed through a cold :class:`RunnerTableRule` (the decide-backed
    fallback every algorithm would use without its vectorised rule) and
    through the compiled rule under both backends.  Radii are asserted
    bit-identical in the same run, and the per-algorithm speedups land in
    the artifact under ``vector_rule_<backend>_<name>`` with their own
    floors, re-checked by ``scripts/check_bench_floors.py``.
    """
    from repro.algorithms.registry import algorithm_registry
    from repro.engine.campaign import make_ball_algorithm
    from repro.kernel.rules import RunnerTableRule

    graph = cycle_graph(RING_N)
    master = make_rng(20260808)
    # Permutations of 0..n-1: valid for every algorithm, including the
    # Cole-Vishkin family whose identifier space is bounded by n.
    rows = [
        tuple(master.sample(range(RING_N), RING_N)) for _ in range(VECTOR_ROWS)
    ]
    report_lines = []
    for name in sorted(algorithm_registry()):
        algorithm = make_ball_algorithm(name, RING_N)

        def run_fallback():
            # Constructed inside the timed closure: the decide table starts
            # cold, exactly as a fresh fallback compile would.
            rule = RunnerTableRule(compile_instance(graph, algorithm))
            return rule.batch_radii(rows)

        fallback_s, reference = _best_of(run_fallback, repeats=1)
        line = f"{name}: fallback {fallback_s:.3f}s"
        for backend, floor in (
            ("python", MIN_SPEEDUP_VECTOR_PYTHON),
            ("numpy", MIN_SPEEDUP_VECTOR_NUMPY),
        ):
            if backend == "numpy" and not numpy_available():
                continue
            instance = compile_instance(graph, algorithm, backend=backend)
            assert instance.vectorized, f"{name} lost its vectorised rule"
            vector_s, radii = _best_of(lambda: simulate_batch(instance, rows))
            assert radii == reference, f"{name}/{backend} radii diverge"
            speedup = fallback_s / vector_s
            _RESULTS[f"vector_rule_{backend}_{name}"] = {
                "fallback_s": fallback_s,
                "kernel_s": vector_s,
                "speedup": speedup,
                "min_speedup": floor,
                "backend": backend,
                "rule": instance.rule.name,
                "rows": len(rows),
            }
            line += f", {backend} {vector_s:.3f}s ({speedup:.1f}x)"
            assert speedup >= floor, (
                f"{name}/{backend} speedup {speedup:.2f}x below {floor:.2f}x"
            )
        report_lines.append(line)
    _write_artifact()
    print("\nvector rules x" + str(len(rows)) + " rows:")
    for line in report_lines:
        print("  " + line)
