"""Instrumentation overhead on the sampling workload, with a JSON artifact.

The observability subsystem's acceptance workload: the distribution-sampling
loop on an 8-cycle under the largest-ID algorithm through a warm compiled
kernel instance — the same stream ``BENCH_kernel.json`` measures — timed
twice:

* **off** — instrumentation disabled (the tier-1 default): every ``span()``
  call on the path returns the no-op singleton;
* **on** — instrumentation enabled: real spans are recorded under a root,
  metrics are published at the bulk flush points.

The sampled estimates are asserted bit-identical between the two runs
(observation must not perturb), then the enabled run must not cost more
than ~5% (``speedup = off_s / on_s >= MIN_SPEEDUP``, i.e. overhead within
the floor's tolerance).  An unasserted ``noop_span_call`` entry records the
per-call cost of the disabled path for the trend report.  Results land in
``BENCH_obs.json`` (re-checked by ``scripts/check_bench_floors.py``).
"""

from __future__ import annotations

import json
import time

from bench_smoke import SMOKE, artifact_path, pick

from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.dist.sampling import sample_round_distribution
from repro.kernel import compile_instance
from repro.obs import metrics, spans
from repro.topology.cycle import cycle_graph

ARTIFACT_PATH = artifact_path("BENCH_obs.json")

#: Floor on ``off_s / on_s``: 0.95 allows ~5% instrumentation overhead.
MIN_SPEEDUP = 0.95
RING_N = 8
SAMPLES = pick(4096, 512)
REPEATS = pick(7, 3)
NOOP_CALLS = pick(200_000, 20_000)

_RESULTS: dict[str, dict] = {}


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _write_artifact() -> None:
    payload = {
        "kind": "repro-bench-obs",
        "smoke": SMOKE,
        "workload": {"topology": "cycle", "n": RING_N, "samples": SAMPLES},
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_bench_obs_overhead_on_sampling():
    graph = cycle_graph(RING_N)
    algorithm = LargestIdAlgorithm()
    instance = compile_instance(graph, algorithm)

    def run_sampling():
        return sample_round_distribution(
            graph, algorithm, samples=SAMPLES, seed=20260729, kernel=instance
        )

    def run_instrumented():
        # Fresh tracer per repetition: steady-state recording, not an
        # ever-growing span forest.
        spans.reset_spans()
        metrics.reset_metrics()
        return run_sampling()

    def measure(repeats: int) -> tuple[float, float, object, object]:
        saved_state = spans._state
        off_s = on_s = float("inf")
        off_result = on_result = None
        try:
            # Interleave the off/on repetitions (rather than timing two
            # separate blocks) so clock-speed drift hits both sides
            # equally — the overhead bound is a ratio of best-of times,
            # and drift between blocks easily exceeds the few percent
            # being measured.
            for _ in range(repeats):
                spans.disable()
                started = time.perf_counter()
                off_result = run_sampling()
                off_s = min(off_s, time.perf_counter() - started)

                spans.enable()
                started = time.perf_counter()
                on_result = run_instrumented()
                on_s = min(on_s, time.perf_counter() - started)
        finally:
            spans._state = saved_state
            spans.reset_spans()
            metrics.reset_metrics()
        return off_s, on_s, off_result, on_result

    # A shared-runner scheduling spike can still skew one best-of window
    # by more than the few percent under test, so a measurement that
    # misses the floor earns one re-measure at doubled repetitions before
    # it counts as a regression.
    for repeats in (REPEATS, REPEATS * 2):
        off_s, on_s, off_result, on_result = measure(repeats)
        if off_s / on_s >= MIN_SPEEDUP:
            break

    # Observation must not perturb: identical estimates either way.
    assert on_result == off_result

    speedup = off_s / on_s
    _RESULTS["obs_overhead_sampling"] = {
        "off_s": off_s,
        "on_s": on_s,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "samples": SAMPLES,
    }
    _write_artifact()
    print(
        f"\nobs sampling x{SAMPLES}: off {off_s:.3f}s, on {on_s:.3f}s "
        f"(speedup {speedup:.3f}x, overhead {max(0.0, on_s / off_s - 1) * 100:.1f}%)"
    )
    assert speedup >= MIN_SPEEDUP


def test_bench_noop_span_call_cost():
    """Record the disabled path's per-call cost (informational, unasserted)."""
    saved_state = spans._state
    try:
        spans.disable()

        def burn():
            noop = spans.NOOP_SPAN
            for _ in range(NOOP_CALLS):
                item = spans.span("kernel.simulate_batch")
                assert item is noop
            return noop

        elapsed, _ = _best_of(burn)
    finally:
        spans._state = saved_state
    _RESULTS["noop_span_call"] = {
        "calls": NOOP_CALLS,
        "total_s": elapsed,
        "ns_per_call": elapsed / NOOP_CALLS * 1e9,
    }
    _write_artifact()
    print(
        f"\nnoop span: {NOOP_CALLS} calls in {elapsed:.4f}s "
        f"({elapsed / NOOP_CALLS * 1e9:.0f} ns/call)"
    )
