"""Benchmark E6 — expected complexity under uniformly random identifiers."""

from bench_smoke import pick

from repro.experiments import random_ids

SIZES = pick([16, 32, 64, 128, 256, 512], [16, 32, 64])
SAMPLES = pick(16, 8)


def test_bench_e6_random_ids(benchmark, report):
    result = benchmark.pedantic(
        lambda: random_ids.run(sizes=SIZES, samples=SAMPLES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E6"
    assert len(result.table) == len(SIZES)
