"""The persistent parallel runtime: warm dispatch + zero-copy fan-out.

Two claims of the warm-pool runtime (:mod:`repro.engine.pool`) are gated
here, with the measurements recorded in ``BENCH_parallel.json``:

* **Warm dispatch** — repeated ``.map()`` calls over one long-lived
  :class:`~repro.engine.pool.WorkerPool` must beat the historical design
  (a fresh ``multiprocessing.Pool`` built and torn down per call) by
  :data:`MIN_DISPATCH_SPEEDUP`.  The workload is dispatch-bound on
  purpose: tiny tasks make pool start-up the dominant cost, which is
  exactly what the warm runtime amortises away.
* **Zero-copy fan-out** — on a sharded scale grid over a
  :data:`FANOUT_N`-node streamed cycle, task messages that reference the
  CSR arrays by :class:`~repro.engine.pool.ShmRef` handle must be at
  least :data:`MIN_FANOUT_RATIO` times smaller than the same messages
  with the arrays pickled inline (the pre-shm transport).  The entry also
  records the amortised ratio counting the one-time shared segments.

Both entries carry ``speedup``/``min_speedup`` pairs re-checked by
``scripts/check_bench_floors.py``.  A parity assertion pins that none of
this changes any measured value: the pooled sharded run must equal the
serial one bit for bit.
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time

from bench_smoke import SMOKE, artifact_path, pick

from repro.engine.campaign import make_ball_algorithm
from repro.engine.pool import WorkerPool
from repro.kernel import ShardedKernelExecutor
from repro.topology.stream import build_csr

ARTIFACT_PATH = artifact_path("BENCH_parallel.json")

WORKERS = 2

#: ``.map()`` calls per timing leg; each is one pool start-up in the cold
#: baseline and one warm dispatch in the gated leg.
DISPATCHES = pick(10, 4)

#: Tiny payloads per dispatch (dispatch-bound by construction).
TASKS_PER_DISPATCH = 8

#: Warm repeated dispatch must beat fresh-pool-per-call by this factor.
#: A single fork/exec/teardown cycle costs tens of milliseconds; a warm
#: dispatch is a pipe round-trip, so the full-mode margin is comfortable.
MIN_DISPATCH_SPEEDUP = pick(3.0, 2.0)

#: Node count of the streamed cycle behind the fan-out measurement.
FANOUT_N = pick(100_000, 4_096)

#: Shard grid of the fan-out measurement: sampled rows × centre chunks.
FANOUT_SAMPLES = 4
FANOUT_CHUNKS = 4

#: Handle-based task messages must shrink payload bytes by this factor.
MIN_FANOUT_RATIO = 10.0

SEED = 20260808

_RESULTS: dict[str, dict] = {}


def _noop(value):
    return value


def _time_cold_dispatches() -> float:
    """The historical design: a fresh multiprocessing.Pool per ``.map()``."""
    payloads = list(range(TASKS_PER_DISPATCH))
    started = time.perf_counter()
    for _ in range(DISPATCHES):
        with multiprocessing.Pool(WORKERS) as pool:
            assert pool.map(_noop, payloads) == payloads
    return time.perf_counter() - started


def _time_warm_dispatches(pool: WorkerPool) -> float:
    """The warm runtime: the same dispatches over one long-lived pool."""
    payloads = list(range(TASKS_PER_DISPATCH))
    started = time.perf_counter()
    for _ in range(DISPATCHES):
        assert pool.map(_noop, payloads) == payloads
    return time.perf_counter() - started


def _shard_payloads(csr) -> list[tuple]:
    """The scale grid's task payloads, exactly as the executor builds them."""
    chunk = max(1, csr.n // FANOUT_CHUNKS)
    ranges = [(start, min(csr.n, start + chunk)) for start in range(0, csr.n, chunk)]
    return [
        ("stats", csr.spec, "largest-id", SEED, row, row + 1, c0, c1)
        for row in range(FANOUT_SAMPLES)
        for (c0, c1) in ranges
    ]


def test_bench_warm_pool_dispatch():
    cold_s = _time_cold_dispatches()
    with WorkerPool(WORKERS) as pool:
        pool.map(_noop, list(range(TASKS_PER_DISPATCH)))  # spawn outside timing
        warm_s = _time_warm_dispatches(pool)
        stats = dict(pool.stats)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    _RESULTS[f"warm_pool_dispatch_w{WORKERS}"] = {
        "dispatches": DISPATCHES,
        "tasks_per_dispatch": TASKS_PER_DISPATCH,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": speedup,
        "min_speedup": MIN_DISPATCH_SPEEDUP,
        "pool_stats": stats,
    }
    print(
        f"\nwarm dispatch: {DISPATCHES} x {TASKS_PER_DISPATCH} tasks, "
        f"cold {cold_s:.3f}s vs warm {warm_s:.3f}s -> {speedup:.1f}x"
    )
    assert speedup >= MIN_DISPATCH_SPEEDUP, (
        f"warm dispatch speedup {speedup:.2f}x below {MIN_DISPATCH_SPEEDUP}x"
    )


def test_bench_shm_fanout_bytes():
    csr = build_csr("cycle", FANOUT_N, seed=SEED)
    payloads = _shard_payloads(csr)
    inline_bytes = sum(
        len(pickle.dumps(payload + ((bytes(memoryview(csr.indptr).cast("B")),
                                     bytes(memoryview(csr.indices).cast("B"))),)))
        for payload in payloads
    )
    with WorkerPool(WORKERS) as pool:
        indptr_ref = pool.publish(csr.indptr)
        indices_ref = pool.publish(csr.indices)
        assert indptr_ref is not None and indices_ref is not None, (
            "shared memory unavailable: the fan-out claim cannot be measured"
        )
        segment_bytes = indptr_ref.size + indices_ref.size
        ref_bytes = sum(
            len(pickle.dumps(payload + ((indptr_ref, indices_ref),)))
            for payload in payloads
        )
        pool.release(indptr_ref)
        pool.release(indices_ref)
    ratio = inline_bytes / ref_bytes
    amortised = inline_bytes / (ref_bytes + segment_bytes)
    _RESULTS[f"shm_fanout_n{FANOUT_N}"] = {
        "n": FANOUT_N,
        "tasks": len(payloads),
        "inline_bytes": inline_bytes,
        "ref_bytes": ref_bytes,
        "segment_bytes": segment_bytes,
        "amortised_ratio": amortised,
        "speedup": ratio,
        "min_speedup": MIN_FANOUT_RATIO,
    }
    print(
        f"\nshm fan-out: n={FANOUT_N}, {len(payloads)} tasks, "
        f"{inline_bytes / 1024:.0f} KiB inline vs {ref_bytes / 1024:.1f} KiB "
        f"by handle ({segment_bytes / 1024:.0f} KiB shared once) -> {ratio:.0f}x"
    )
    assert ratio >= MIN_FANOUT_RATIO, (
        f"shm fan-out payload reduction {ratio:.1f}x below {MIN_FANOUT_RATIO}x"
    )


def test_bench_parallel_equals_serial_and_write_artifact():
    n = pick(2_048, 256)
    csr = build_csr("cycle", n, seed=SEED)

    def _measures(workers):
        executor = ShardedKernelExecutor(
            csr,
            make_ball_algorithm("largest-id", csr.n),
            workers=workers,
            row_block=1,
            center_chunk=max(1, n // 4),
        )
        return executor.sample_measures(3, seed=SEED)

    assert _measures(WORKERS) == _measures(1)
    payload = {
        "kind": "repro-bench-parallel",
        "smoke": SMOKE,
        "workload": {
            "workers": WORKERS,
            "dispatches": DISPATCHES,
            "fanout_n": FANOUT_N,
            "fanout_tasks": FANOUT_SAMPLES * FANOUT_CHUNKS,
        },
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
