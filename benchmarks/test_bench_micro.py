"""Micro-benchmarks of the library's hot paths.

Unlike the experiment benchmarks (one deterministic sweep each), these use
pytest-benchmark's repeated timing to characterise the cost of the
simulator's inner loops: ball extraction, a full largest-ID run, one
Cole–Vishkin round execution and the recurrence evaluation.
"""

from repro.algorithms.cole_vishkin import ColeVishkinRing
from repro.algorithms.largest_id import LargestIdAlgorithm
from repro.core.runner import run_ball_algorithm
from repro.model.ball import extract_ball
from repro.model.identifiers import random_assignment
from repro.model.rounds import run_round_algorithm
from repro.theory.recurrence import worst_case_segment_sum
from repro.topology.cycle import cycle_graph

RING = cycle_graph(256)
IDS = random_assignment(256, seed=99)


def test_bench_extract_ball_radius_8(benchmark):
    ball = benchmark(extract_ball, RING, IDS, 17, 8)
    assert ball.size == 17


def test_bench_largest_id_full_run(benchmark):
    trace = benchmark(run_ball_algorithm, RING, IDS, LargestIdAlgorithm())
    assert trace.max_radius == 128


def test_bench_cole_vishkin_round_execution(benchmark):
    trace = benchmark(run_round_algorithm, RING, IDS, ColeVishkinRing(256))
    assert trace.max_radius == trace.average_radius


def test_bench_recurrence_4096(benchmark):
    def compute():
        # Bypass the module-level cache so the benchmark measures real work.
        from repro.theory import recurrence

        recurrence._A_CACHE[:] = [0, 1]
        return worst_case_segment_sum(4096)

    value = benchmark(compute)
    assert value == 24577
