"""Benchmark E13 — exact vs sampled measure distributions."""

from bench_smoke import pick

from repro.experiments import distributions

SIZES = pick([6, 7, 8], [5, 6])
SAMPLES = pick(192, 64)


def test_bench_e13_distributions(benchmark, report):
    result = benchmark.pedantic(
        lambda: distributions.run(sizes=SIZES, samples=SAMPLES),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.experiment_id == "E13"
    # Two families (cycle, tree) x two methods (exact, sample) per size.
    assert len(result.table) == 4 * len(SIZES)
