"""Benchmark E11 — the average measure beyond cycles (further-work experiment)."""

from bench_smoke import pick

from repro.experiments import general_graphs

N = pick(144, 64)
SAMPLES = pick(4, 2)


def test_bench_e11_general_graphs(benchmark, report):
    result = benchmark.pedantic(
        lambda: general_graphs.run(n=N, samples=SAMPLES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E11"
    assert len(result.table) >= 6
