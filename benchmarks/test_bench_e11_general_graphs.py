"""Benchmark E11 — the average measure beyond cycles (further-work experiment)."""

from repro.experiments import general_graphs


def test_bench_e11_general_graphs(benchmark, report):
    result = benchmark.pedantic(
        lambda: general_graphs.run(n=144, samples=4), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E11"
    assert len(result.table) >= 6
