"""Benchmark E2 — the segment recurrence a(p), OEIS A000788 and Theta(p log p)."""

from bench_smoke import pick

from repro.experiments import recurrence

SIZES = pick([16, 64, 256, 1024, 4096, 16384], [16, 64, 256])


def test_bench_e2_recurrence(benchmark, report):
    result = benchmark.pedantic(
        lambda: recurrence.run(sizes=SIZES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E2"
    assert all(row["a(p)"] == row["A000788(p)"] for row in result.table.rows)
