"""Million-node scale path: streamed CSR + sharded sampling, with RSS probes.

The scale acceptance workload: for each size in :data:`SIZES` a **fresh
subprocess** builds the streamed-CSR cycle, runs
:func:`repro.kernel.shard.run_scale_probe` (sharded sampling of both
measures under the largest-ID algorithm), and reports throughput plus its
own ``ru_maxrss`` peak.  The subprocess isolation is the point — the parent
pytest process has touched numpy, graphs and caches, so only a child's RSS
honestly bounds what the scale path itself allocates.

Each entry lands in ``BENCH_scale.json`` as ``scale_cycle_n<size>`` with a
``nodes_per_s`` floor and a ``peak_rss_bytes`` ceiling, asserted in-run and
re-checked by ``scripts/check_bench_floors.py``.  The path is pure stdlib,
so this benchmark runs (and gates) on the numpy-free engine-smoke job too.

Smoke mode (``REPRO_BENCH_SMOKE=1``) keeps every size at or below 10^3
nodes — ``tests/test_bench_floors.py`` pins that bound — so the CI smoke
job exercises the identical code path in well under a second.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from bench_smoke import SMOKE, artifact_path, pick

from repro.kernel.backend import numpy_available

ARTIFACT_PATH = artifact_path("BENCH_scale.json")

#: Full-mode sizes: the tentpole claim is the 10^6-node cycle end to end.
SIZES_FULL = (10_000, 100_000, 1_000_000)
#: Smoke-mode sizes: same code path, must stay at or below 10^3 nodes.
SIZES_SMOKE = (256, 1_000)
SIZES = pick(SIZES_FULL, SIZES_SMOKE)

#: Sampled identifier assignments per size.  One full row is O(n) centres,
#: so the 10^6 probe keeps this small; the measures still fold per shard.
SAMPLES = pick(2, 2)

#: Throughput floor in sampled centres per second.  The 1-CPU CI runner
#: sustains ~100k nodes/s on this path; the floor is ~20x slack so only a
#: true algorithmic regression (e.g. losing the early-stop BFS) trips it.
MIN_NODES_PER_S = pick(5_000.0, 2_000.0)

#: Peak-RSS ceiling for the probe subprocess.  The acceptance bound: the
#: 10^6-node cycle must sample end to end in well under 2 GiB.
MAX_RSS_BYTES = 2 * 1024**3

#: Scaling ratchet: every size's nodes/s relative to the smallest probed
#: size.  The ring-scan rule removed the per-centre BFS log factor, so the
#: rate must stay essentially flat as n grows — on the numpy backend the
#: measured relative rate at 10^6 is ~3x (small sizes pay fixed startup),
#: on the pure-python fallback ~0.63.  The floors below only trip when the
#: rule's per-centre cost stops being size-independent again.
MIN_REL_NODES_PER_S = pick(0.8 if numpy_available() else 0.45, 0.1)

SEED = 20260808

_RESULTS: dict[str, dict] = {}

_PROBE_SCRIPT = """\
import json, sys
from repro.kernel.shard import run_scale_probe

spec = json.loads(sys.argv[1])
print(json.dumps(run_scale_probe(**spec)))
"""


def _probe_in_subprocess(n: int) -> dict:
    """Run one scale probe in a fresh interpreter and parse its JSON report."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    spec = {
        "topology": "cycle",
        "n": n,
        "algorithm": "largest-id",
        "samples": SAMPLES,
        "seed": SEED,
        "workers": 1,
        "row_block": 4,
        "center_chunk": 65_536,
    }
    completed = subprocess.run(
        [sys.executable, "-c", _PROBE_SCRIPT, json.dumps(spec)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": src_root},
        check=False,
    )
    assert completed.returncode == 0, (
        f"scale probe n={n} failed:\n{completed.stderr}"
    )
    return json.loads(completed.stdout)


def _write_artifact() -> None:
    payload = {
        "kind": "repro-bench-scale",
        "smoke": SMOKE,
        "workload": {
            "topology": "cycle",
            "algorithm": "largest-id",
            "samples": SAMPLES,
            "sizes": list(SIZES),
        },
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def test_bench_scale_cycle_sizes():
    report_lines = []
    entries = []
    for n in SIZES:
        probe = _probe_in_subprocess(n)
        assert probe["n"] == n and probe["samples"] == SAMPLES
        entry = {
            "n": n,
            "samples": SAMPLES,
            "build_s": probe["build_s"],
            "elapsed_s": probe["elapsed_s"],
            "nodes_per_s": probe["nodes_per_s"],
            "min_nodes_per_s": MIN_NODES_PER_S,
            "peak_rss_bytes": probe["peak_rss_bytes"],
            "max_rss_bytes": MAX_RSS_BYTES,
            "avg_mean": probe["avg_mean"],
            "max_mean": probe["max_mean"],
            "rule": probe["rule"],
        }
        entries.append(entry)
        _RESULTS[f"scale_cycle_n{n}"] = entry
        # The cycle's classic measure is its eccentricity: floor(n/2).
        assert probe["max_mean"] == n // 2
        assert probe["nodes_per_s"] >= MIN_NODES_PER_S, (
            f"n={n}: {probe['nodes_per_s']:.0f} nodes/s below "
            f"{MIN_NODES_PER_S:.0f} floor"
        )
        assert probe["peak_rss_bytes"] <= MAX_RSS_BYTES, (
            f"n={n}: peak RSS {probe['peak_rss_bytes']} over "
            f"{MAX_RSS_BYTES} ceiling"
        )
    # The scaling ratchet: throughput relative to the smallest probed size
    # must not collapse as n grows (the baseline gates trivially at 1.0).
    baseline = entries[0]["nodes_per_s"]
    for entry in entries:
        entry["rel_nodes_per_s"] = entry["nodes_per_s"] / baseline
        entry["min_rel_nodes_per_s"] = (
            0.0 if entry is entries[0] else MIN_REL_NODES_PER_S
        )
        report_lines.append(
            f"n={entry['n']}: {entry['nodes_per_s']:.0f} nodes/s "
            f"(rel {entry['rel_nodes_per_s']:.2f}), "
            f"rss {entry['peak_rss_bytes'] / 1024**2:.0f} MiB, "
            f"avg {entry['avg_mean']:.3f}, max {entry['max_mean']:.0f}"
        )
        assert entry["rel_nodes_per_s"] >= entry["min_rel_nodes_per_s"], (
            f"n={entry['n']}: relative rate {entry['rel_nodes_per_s']:.2f} "
            f"below the {entry['min_rel_nodes_per_s']:.2f} scaling floor"
        )
    _write_artifact()
    print("\nscale path (cycle, largest-id, fresh subprocess per size):")
    for line in report_lines:
        print("  " + line)
