"""Benchmark E7 — dynamic networks: repair cost after a change at a random node."""

from repro.experiments import dynamic

SIZES = [64, 128, 256, 512]


def test_bench_e7_dynamic(benchmark, report):
    result = benchmark.pedantic(
        lambda: dynamic.run(sizes=SIZES, churn_events=24), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E7"
    assert all(
        row["worst_case_estimate"] > row["repair_measured_churn"] for row in result.table.rows
    )
