"""Benchmark E7 — dynamic networks: repair cost after a change at a random node."""

from bench_smoke import pick

from repro.experiments import dynamic

SIZES = pick([64, 128, 256, 512], [64, 128])
CHURN_EVENTS = pick(24, 8)


def test_bench_e7_dynamic(benchmark, report):
    result = benchmark.pedantic(
        lambda: dynamic.run(sizes=SIZES, churn_events=CHURN_EVENTS), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E7"
    assert all(
        row["worst_case_estimate"] > row["repair_measured_churn"] for row in result.table.rows
    )
