"""Benchmark E1 — largest-ID on a cycle: Theta(log n) average vs Theta(n) worst case.

Regenerates the Section 2 comparison: for each ring size, the average radius
on the worst identifier arrangement (with the exact recurrence bound next to
it), the average on random identifiers, and the linear classic measure.
"""

from bench_smoke import pick

from repro.experiments import largest_id

SIZES = pick([16, 32, 64, 128, 256, 512, 1024], [16, 32, 64])


def test_bench_e1_largest_id(benchmark, report):
    result = benchmark.pedantic(
        lambda: largest_id.run(sizes=SIZES), rounds=1, iterations=1
    )
    report(result)
    assert result.experiment_id == "E1"
    assert len(result.table) == len(SIZES)
