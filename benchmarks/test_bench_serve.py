"""Store-hit-vs-cold-compute benchmark of the query service, with artifact.

The point of ``repro serve``'s content-addressed store: a repeated exact
query must answer from the persistent store *much* faster than computing
cold.  Two workloads land in ``BENCH_serve.json``:

* **store_hit_vs_cold** — the same exact sweep query, cold compute vs the
  warmed store (best-of-``REPEATS`` on the hit side); the asserted floor is
  ``MIN_SPEEDUP`` (>= 5x per the acceptance criteria, asserted here and
  re-checked by ``scripts/check_bench_floors.py``);
* **store_hit_across_restart** — the same lookup from a *fresh subprocess*
  on the same store root (a cold L1, disk-only L2), proving the store
  survives a process restart; the subprocess must report an ``l2`` hit and
  the identical document, and its lookup must still clear the floor
  against the parent's cold-compute time.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from bench_smoke import SMOKE, artifact_path, pick

from repro.api.query import Query
from repro.service import QueryService

ARTIFACT_PATH = artifact_path("BENCH_serve.json")
MIN_SPEEDUP = 5.0
REPEATS = pick(5, 3)

SWEEP_N = pick((8, 10), (6, 8))
SWEEP_SAMPLES = pick(64, 16)

_RESULTS: dict[str, dict] = {}


def _record(name: str, entry: dict) -> dict:
    _RESULTS[name] = entry
    payload = {
        "kind": "repro-bench-serve",
        "min_speedup": MIN_SPEEDUP,
        "smoke": SMOKE,
        "results": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return entry


def _query() -> Query:
    return Query(
        mode="sweep",
        topologies="cycle",
        sizes=SWEEP_N,
        algorithms="largest-id",
        adversaries=("branch-and-bound", "random-search"),
        measure="average",
        samples=SWEEP_SAMPLES,
    )


def test_bench_store_hit_vs_cold_compute(tmp_path):
    query = _query()
    service = QueryService(root=tmp_path / "store")

    started = time.perf_counter()
    cold = service.execute(query)
    cold_s = time.perf_counter() - started
    assert cold.tier == "miss"

    hit_s = float("inf")
    for _ in range(REPEATS):
        started = time.perf_counter()
        hit = service.execute(query)
        hit_s = min(hit_s, time.perf_counter() - started)
        assert hit.tier in ("l1", "l2")
        assert hit.document == cold.document
    entry = _record(
        f"store_hit_vs_cold_n{max(SWEEP_N)}",
        {
            "cold_s": cold_s,
            "hit_s": hit_s,
            "speedup": cold_s / hit_s,
            "sizes": list(SWEEP_N),
            "samples": SWEEP_SAMPLES,
        },
    )
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"store hit only {entry['speedup']:.1f}x faster than cold compute "
        f"(wanted >= {MIN_SPEEDUP}x): {entry}"
    )


def test_bench_store_hit_across_process_restart(tmp_path):
    query = _query()
    root = tmp_path / "store"
    service = QueryService(root=root)

    started = time.perf_counter()
    cold = service.execute(query)
    cold_s = time.perf_counter() - started
    assert cold.tier == "miss"

    script = (
        "import json, sys, time\n"
        "from repro.api.query import Query\n"
        "from repro.service import QueryService\n"
        "service = QueryService(root=sys.argv[1])\n"
        "query = Query.from_json(sys.argv[2])\n"
        "started = time.perf_counter()\n"
        "outcome = service.execute(query)\n"
        "elapsed = time.perf_counter() - started\n"
        "print(json.dumps({'tier': outcome.tier, 'hit_s': elapsed,\n"
        "                  'document': outcome.document}))\n"
    )
    completed = subprocess.run(
        [sys.executable, "-c", script, str(root), query.to_json()],
        capture_output=True,
        text=True,
        check=True,
    )
    answer = json.loads(completed.stdout)
    assert answer["tier"] == "l2", "a fresh process must hit the on-disk tier"
    assert answer["document"] == cold.document, "the persisted document must round-trip"
    entry = _record(
        f"store_hit_across_restart_n{max(SWEEP_N)}",
        {
            "cold_s": cold_s,
            "hit_s": answer["hit_s"],
            "speedup": cold_s / answer["hit_s"],
            "sizes": list(SWEEP_N),
            "samples": SWEEP_SAMPLES,
        },
    )
    assert entry["speedup"] >= MIN_SPEEDUP, (
        f"restart store hit only {entry['speedup']:.1f}x faster than cold "
        f"compute (wanted >= {MIN_SPEEDUP}x): {entry}"
    )
