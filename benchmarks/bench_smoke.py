"""Smoke-mode switch for the benchmark suite.

``make bench-smoke`` (and the CI job of the same name) sets
``REPRO_BENCH_SMOKE=1`` and runs every ``benchmarks/test_bench_*.py``
through the same code paths with reduced sizes and budgets, so regressions
in the ``BENCH_*.json`` artifacts and the speedup assertions surface on
every PR instead of only on full local runs.

Benchmark modules call :func:`pick` for anything that should shrink in
smoke mode; artifacts record the mode so a smoke JSON is never mistaken
for a full one.
"""

from __future__ import annotations

import os

#: True when the suite runs under ``make bench-smoke`` / the CI smoke job.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"


def pick(full, smoke):
    """Return ``full`` normally, ``smoke`` under ``REPRO_BENCH_SMOKE=1``."""
    return smoke if SMOKE else full
