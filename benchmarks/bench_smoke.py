"""Smoke-mode switch for the benchmark suite.

``make bench-smoke`` (and the CI job of the same name) sets
``REPRO_BENCH_SMOKE=1`` and runs every ``benchmarks/test_bench_*.py``
through the same code paths with reduced sizes and budgets, so regressions
in the ``BENCH_*.json`` artifacts and the speedup assertions surface on
every PR instead of only on full local runs.

Benchmark modules call :func:`pick` for anything that should shrink in
smoke mode; artifacts record the mode so a smoke JSON is never mistaken
for a full one.

Artifact writes are gated separately: the committed ``BENCH_*.json`` files
are only rewritten under ``REPRO_BENCH_WRITE=1`` (set by ``make bench`` and
``make bench-smoke``).  An ordinary ``pytest`` run — tier-1 collects the
benchmarks too — times and asserts exactly the same workloads but writes
its JSON to a scratch directory, so plain test runs never dirty the tree.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

#: True when the suite runs under ``make bench-smoke`` / the CI smoke job.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"

#: True when artifact writes should land on the committed BENCH_*.json
#: files (``make bench`` / ``make bench-smoke`` set REPRO_BENCH_WRITE=1).
WRITE_ARTIFACTS = os.environ.get("REPRO_BENCH_WRITE", "") == "1"

_REPO_ROOT = Path(__file__).resolve().parent.parent


def pick(full, smoke):
    """Return ``full`` normally, ``smoke`` under ``REPRO_BENCH_SMOKE=1``."""
    return smoke if SMOKE else full


def artifact_path(filename: str) -> Path:
    """Where a benchmark should write its ``BENCH_*.json`` artifact.

    The committed repo-root path under ``REPRO_BENCH_WRITE=1``, otherwise a
    per-process scratch file under the system temp directory, so ordinary
    test runs leave the committed artifacts untouched.
    """
    if WRITE_ARTIFACTS:
        return _REPO_ROOT / filename
    scratch = Path(tempfile.gettempdir()) / f"repro-bench-scratch-{os.getpid()}"
    scratch.mkdir(exist_ok=True)
    return scratch / filename
