"""Benchmark E8 — parallel simulation: early-stopping nodes free processors."""

from bench_smoke import pick

from repro.experiments import parallel

SIZES = pick([128, 256, 512, 1024], [128, 256])
PROCESSOR_COUNTS = pick((4, 16, 64), (4, 16))


def test_bench_e8_parallel(benchmark, report):
    result = benchmark.pedantic(
        lambda: parallel.run(sizes=SIZES, processor_counts=PROCESSOR_COUNTS),
        rounds=1,
        iterations=1,
    )
    report(result)
    assert result.experiment_id == "E8"
    assert all(
        row["speedup"] >= 2.0
        for row in result.table.rows
        if row["n"] >= 8 * row["processors"]
    )
